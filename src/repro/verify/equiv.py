"""Combinational equivalence checking.

Rewiring must never change a primary output's function; every optimizer
run in this repository ends with this check.  Strategy: fast random
bit-parallel simulation as a filter (differences are almost always
caught within 64 patterns), then exact confirmation — exhaustive
truth tables for narrow cones, BDDs otherwise, built per output cone so
unrelated logic never inflates the decision diagrams.

All simulation rides on :mod:`repro.logic.simcore`: the historical
four 64-bit random rounds collapse into one 256-pattern block swept by
the compiled vectorized engine (the patterns applied are identical, so
the filter decision is too), and the exhaustive stage reads whole
truth-table blocks out of the same engine.  ``backend`` selects the
evaluation strategy (``"auto"`` prefers numpy, ``"bigint"`` is the
reference); results are identical across backends by construction.
"""

from __future__ import annotations

from ..logic.bdd import BddManager, network_bdds
from ..logic.simcore import SimEngine
from ..network.netlist import Network


class EquivalenceError(AssertionError):
    """Raised by :func:`assert_equivalent` with a counterexample report."""


def networks_equivalent(
    before: Network,
    after: Network,
    exhaustive_limit: int = 14,
    random_rounds: int = 4,
    backend: str = "auto",
) -> bool:
    """True when both networks compute identical primary outputs.

    The networks must agree on primary-input and primary-output
    ordering (rewiring never changes the interface).
    """
    if list(before.inputs) != list(after.inputs):
        return False
    if len(before.outputs) != len(after.outputs):
        return False
    engine_before = SimEngine(before, backend)
    engine_after = SimEngine(after, backend)
    try:
        if engine_before.random_output_words(rounds=random_rounds) != (
            engine_after.random_output_words(rounds=random_rounds)
        ):
            return False
        if len(before.inputs) <= exhaustive_limit:
            engine_before.set_exhaustive_patterns()
            engine_after.set_exhaustive_patterns(list(before.inputs))
            return (
                engine_before.output_words() == engine_after.output_words()
            )
    finally:
        engine_before.detach()
        engine_after.detach()
    return _bdd_equivalent(before, after)


def _bdd_equivalent(before: Network, after: Network) -> bool:
    """BDD comparison proportional to the *changed* logic.

    One topological sweep marks every **clean** net — same name, gate
    type and ordered fanins in both networks, with every fanin clean —
    so the work is O(network) regardless of output count.  Outputs
    driven by clean nets are equivalent by construction.  A dirty
    output is first compared over the clean *cut*: its cone is rebuilt
    with every clean net as a free BDD variable, which keeps the
    decision diagrams sized to the rewired region instead of the full
    input cone (on a 1e5-gate netlist after a few hundred local swaps
    this is the difference between milliseconds and minutes).  Cut
    agreement implies equivalence (substituting the shared clean
    functions preserves equality); cut *disagreement* is inconclusive
    — two cones can differ over a free cut yet agree over the real
    inputs — so only that rare case pays for a full-input per-cone
    comparison.
    """
    clean = _clean_nets(before, after)
    for old, new in zip(before.outputs, after.outputs):
        if old == new and (old in clean or before.is_input(old)):
            continue
        manager = BddManager()
        if _cut_cone_bdd(before, manager, old, clean) == _cut_cone_bdd(
            after, manager, new, clean
        ):
            continue
        full = BddManager(list(before.inputs))
        _, funcs_before = network_bdds(before, manager=full, nets=[old])
        _, funcs_after = network_bdds(after, manager=full, nets=[new])
        if funcs_before[old] != funcs_after[new]:
            return False
    return True


def _clean_nets(before: Network, after: Network) -> set[str]:
    """Nets whose whole driving cone is gate-for-gate identical."""
    clean: set[str] = {
        net for net in before.inputs if after.is_input(net)
    }
    for net in before.topo_order():
        gate_before = before.driver(net)
        if gate_before is None:
            continue
        if net not in after:
            continue  # deleted (e.g. redundancy removal): not clean
        gate_after = after.driver(net)
        if (
            gate_after is not None
            and gate_before.gtype == gate_after.gtype
            and list(gate_before.fanins) == list(gate_after.fanins)
            and all(f in clean for f in gate_before.fanins)
        ):
            clean.add(net)
    return clean


def _cut_cone_bdd(
    network: Network, manager: BddManager, root: str, cut: set[str]
) -> int:
    """BDD of *root*'s cone with cut (and input) nets as variables."""
    from ..network.gatetype import GateType, base_type, is_inverted

    funcs: dict[str, int] = {}
    stack = [root]
    while stack:
        net = stack.pop()
        if net in funcs:
            continue
        if net in cut or network.is_input(net):
            funcs[net] = manager.var(net)
            continue
        gate = network.gate(net)
        if gate.gtype is GateType.CONST0:
            funcs[net] = 0
            continue
        if gate.gtype is GateType.CONST1:
            funcs[net] = 1
            continue
        pending = [f for f in gate.fanins if f not in funcs]
        if pending:
            stack.append(net)
            stack.extend(pending)
            continue
        operands = [funcs[f] for f in gate.fanins]
        base = base_type(gate.gtype)
        if base is GateType.AND:
            value = manager.apply_many(manager.and_, operands)
        elif base is GateType.OR:
            value = manager.apply_many(manager.or_, operands)
        elif base is GateType.XOR:
            value = manager.apply_many(manager.xor, operands)
        else:  # BUF base
            value = operands[0]
        if is_inverted(gate.gtype):
            value = manager.not_(value)
        funcs[net] = value
    return funcs[root]


def find_counterexample(
    before: Network, after: Network, max_vars: int = 20, backend: str = "auto"
) -> dict[str, int] | None:
    """Input assignment on which the networks disagree, or ``None``.

    Only supports networks narrow enough for exhaustive search.
    """
    num_vars = len(before.inputs)
    if num_vars > max_vars:
        raise ValueError(f"too many inputs ({num_vars}) for exhaustive search")
    engine_before = SimEngine(before, backend)
    engine_after = SimEngine(after, backend)
    try:
        engine_before.set_exhaustive_patterns()
        engine_after.set_exhaustive_patterns(list(before.inputs))
        outs_before = engine_before.output_words()
        outs_after = engine_after.output_words()
    finally:
        engine_before.detach()
        engine_after.detach()
    for word_before, word_after in zip(outs_before, outs_after):
        diff = word_before ^ word_after
        if diff:
            minterm = (diff & -diff).bit_length() - 1
            return {
                net: (minterm >> index) & 1
                for index, net in enumerate(before.inputs)
            }
    return None


def assert_equivalent(
    before: Network, after: Network, backend: str = "auto"
) -> None:
    """Raise :class:`EquivalenceError` with diagnostics on mismatch."""
    if networks_equivalent(before, after, backend=backend):
        return
    detail = ""
    if len(before.inputs) <= 20:
        example = find_counterexample(before, after, backend=backend)
        detail = f"; counterexample {example}"
    raise EquivalenceError(
        f"networks {before.name!r} and {after.name!r} differ{detail}"
    )
