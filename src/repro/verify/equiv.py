"""Combinational equivalence checking.

Rewiring must never change a primary output's function; every optimizer
run in this repository ends with this check.  Strategy: fast random
bit-parallel simulation as a filter (differences are almost always
caught within 64 patterns), then exact confirmation — exhaustive
truth tables for narrow cones, BDDs otherwise, built per output cone so
unrelated logic never inflates the decision diagrams.

All simulation rides on :mod:`repro.logic.simcore`: the historical
four 64-bit random rounds collapse into one 256-pattern block swept by
the compiled vectorized engine (the patterns applied are identical, so
the filter decision is too), and the exhaustive stage reads whole
truth-table blocks out of the same engine.  ``backend`` selects the
evaluation strategy (``"auto"`` prefers numpy, ``"bigint"`` is the
reference); results are identical across backends by construction.
"""

from __future__ import annotations

from ..logic.bdd import BddManager, network_bdds
from ..logic.simcore import SimEngine
from ..network.netlist import Network


class EquivalenceError(AssertionError):
    """Raised by :func:`assert_equivalent` with a counterexample report."""


def networks_equivalent(
    before: Network,
    after: Network,
    exhaustive_limit: int = 14,
    random_rounds: int = 4,
    backend: str = "auto",
) -> bool:
    """True when both networks compute identical primary outputs.

    The networks must agree on primary-input and primary-output
    ordering (rewiring never changes the interface).
    """
    if list(before.inputs) != list(after.inputs):
        return False
    if len(before.outputs) != len(after.outputs):
        return False
    engine_before = SimEngine(before, backend)
    engine_after = SimEngine(after, backend)
    try:
        if engine_before.random_output_words(rounds=random_rounds) != (
            engine_after.random_output_words(rounds=random_rounds)
        ):
            return False
        if len(before.inputs) <= exhaustive_limit:
            engine_before.set_exhaustive_patterns()
            engine_after.set_exhaustive_patterns(list(before.inputs))
            return (
                engine_before.output_words() == engine_after.output_words()
            )
    finally:
        engine_before.detach()
        engine_after.detach()
    return _bdd_equivalent(before, after)


def _bdd_equivalent(before: Network, after: Network) -> bool:
    """Per-output-cone BDD comparison on a shared manager."""
    for old, new in zip(before.outputs, after.outputs):
        manager = BddManager(list(before.inputs))
        _, funcs_before = network_bdds(before, manager=manager, nets=[old])
        _, funcs_after = network_bdds(after, manager=manager, nets=[new])
        if funcs_before[old] != funcs_after[new]:
            return False
    return True


def find_counterexample(
    before: Network, after: Network, max_vars: int = 20, backend: str = "auto"
) -> dict[str, int] | None:
    """Input assignment on which the networks disagree, or ``None``.

    Only supports networks narrow enough for exhaustive search.
    """
    num_vars = len(before.inputs)
    if num_vars > max_vars:
        raise ValueError(f"too many inputs ({num_vars}) for exhaustive search")
    engine_before = SimEngine(before, backend)
    engine_after = SimEngine(after, backend)
    try:
        engine_before.set_exhaustive_patterns()
        engine_after.set_exhaustive_patterns(list(before.inputs))
        outs_before = engine_before.output_words()
        outs_after = engine_after.output_words()
    finally:
        engine_before.detach()
        engine_after.detach()
    for word_before, word_after in zip(outs_before, outs_after):
        diff = word_before ^ word_after
        if diff:
            minterm = (diff & -diff).bit_length() - 1
            return {
                net: (minterm >> index) & 1
                for index, net in enumerate(before.inputs)
            }
    return None


def assert_equivalent(
    before: Network, after: Network, backend: str = "auto"
) -> None:
    """Raise :class:`EquivalenceError` with diagnostics on mismatch."""
    if networks_equivalent(before, after, backend=backend):
        return
    detail = ""
    if len(before.inputs) <= 20:
        example = find_counterexample(before, after, backend=backend)
        detail = f"; counterexample {example}"
    raise EquivalenceError(
        f"networks {before.name!r} and {after.name!r} differ{detail}"
    )
