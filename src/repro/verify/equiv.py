"""Combinational equivalence checking.

Rewiring must never change a primary output's function; every optimizer
run in this repository ends with this check.  Strategy: fast random
bit-parallel simulation as a filter (differences are almost always
caught within 64 patterns), then exact confirmation — exhaustive
truth tables for narrow cones, BDDs otherwise, built per output cone so
unrelated logic never inflates the decision diagrams.
"""

from __future__ import annotations

from ..logic.bdd import BddManager, network_bdds
from ..logic.simulate import (
    random_simulate_outputs,
    simulate_outputs,
    truth_tables,
    variable_word,
)
from ..network.netlist import Network


class EquivalenceError(AssertionError):
    """Raised by :func:`assert_equivalent` with a counterexample report."""


def networks_equivalent(
    before: Network,
    after: Network,
    exhaustive_limit: int = 14,
    random_rounds: int = 4,
) -> bool:
    """True when both networks compute identical primary outputs.

    The networks must agree on primary-input and primary-output
    ordering (rewiring never changes the interface).
    """
    if list(before.inputs) != list(after.inputs):
        return False
    if len(before.outputs) != len(after.outputs):
        return False
    for seed in range(random_rounds):
        if random_simulate_outputs(before, seed=seed) != (
            random_simulate_outputs(after, seed=seed)
        ):
            return False
    if len(before.inputs) <= exhaustive_limit:
        tables_before = truth_tables(before)
        tables_after = truth_tables(after, support=list(before.inputs))
        return all(
            tables_before[old] == tables_after[new]
            for old, new in zip(before.outputs, after.outputs)
        )
    return _bdd_equivalent(before, after)


def _bdd_equivalent(before: Network, after: Network) -> bool:
    """Per-output-cone BDD comparison on a shared manager."""
    for old, new in zip(before.outputs, after.outputs):
        manager = BddManager(list(before.inputs))
        _, funcs_before = network_bdds(before, manager=manager, nets=[old])
        _, funcs_after = network_bdds(after, manager=manager, nets=[new])
        if funcs_before[old] != funcs_after[new]:
            return False
    return True


def find_counterexample(
    before: Network, after: Network, max_vars: int = 20
) -> dict[str, int] | None:
    """Input assignment on which the networks disagree, or ``None``.

    Only supports networks narrow enough for exhaustive search.
    """
    num_vars = len(before.inputs)
    if num_vars > max_vars:
        raise ValueError(f"too many inputs ({num_vars}) for exhaustive search")
    assignments = {
        net: variable_word(index, num_vars)
        for index, net in enumerate(before.inputs)
    }
    mask = (1 << (1 << num_vars)) - 1
    outs_before = simulate_outputs(before, assignments, mask)
    outs_after = simulate_outputs(
        after, {net: assignments[net] for net in after.inputs}, mask
    )
    for word_before, word_after in zip(outs_before, outs_after):
        diff = word_before ^ word_after
        if diff:
            minterm = (diff & -diff).bit_length() - 1
            return {
                net: (minterm >> index) & 1
                for index, net in enumerate(before.inputs)
            }
    return None


def assert_equivalent(before: Network, after: Network) -> None:
    """Raise :class:`EquivalenceError` with diagnostics on mismatch."""
    if networks_equivalent(before, after):
        return
    detail = ""
    if len(before.inputs) <= 20:
        example = find_counterexample(before, after)
        detail = f"; counterexample {example}"
    raise EquivalenceError(
        f"networks {before.name!r} and {after.name!r} differ{detail}"
    )
