"""Gate types of the mapped Boolean network.

The paper (Section 2.0) develops its theory for ``type(g)`` in
{AND, OR, XOR, INV, BUF} and treats NAND, NOR and XNOR as inverted
AND, OR and XOR.  This module captures that algebra: every supported
type is an *base function* (AND / OR / XOR / identity) plus an
optional output inversion, together with the controlling-value
machinery used by direct backward implication.
"""

from __future__ import annotations

import enum


class GateType(enum.Enum):
    """Logic type of a single-output gate."""

    AND = "and"
    OR = "or"
    XOR = "xor"
    NAND = "nand"
    NOR = "nor"
    XNOR = "xnor"
    INV = "inv"
    BUF = "buf"
    CONST0 = "const0"
    CONST1 = "const1"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GateType.{self.name}"


#: Gate types whose base function is AND or OR (the "and-or class" of the
#: paper); backward implication forces all inputs when the output carries
#: the value obtained with every input at its non-controlling value.
AND_OR_TYPES = frozenset(
    {GateType.AND, GateType.OR, GateType.NAND, GateType.NOR}
)

#: Gate types whose base function is XOR; these have no controlling value
#: and form the "xor-reachable" class of Definition 1.
XOR_TYPES = frozenset({GateType.XOR, GateType.XNOR})

#: Pass-through gate types; they neither begin nor end a supergate and
#: only toggle / preserve polarity along a path.
WIRE_TYPES = frozenset({GateType.INV, GateType.BUF})

#: Constant generators; they take no inputs.
CONST_TYPES = frozenset({GateType.CONST0, GateType.CONST1})

#: Types whose output is the complement of their base function.
INVERTED_TYPES = frozenset({GateType.NAND, GateType.NOR, GateType.XNOR, GateType.INV})

_BASE = {
    GateType.AND: GateType.AND,
    GateType.NAND: GateType.AND,
    GateType.OR: GateType.OR,
    GateType.NOR: GateType.OR,
    GateType.XOR: GateType.XOR,
    GateType.XNOR: GateType.XOR,
    GateType.INV: GateType.BUF,
    GateType.BUF: GateType.BUF,
    GateType.CONST0: GateType.CONST0,
    GateType.CONST1: GateType.CONST1,
}

_CONTROLLING = {GateType.AND: 0, GateType.OR: 1}

_COMPLEMENT = {
    GateType.AND: GateType.NAND,
    GateType.NAND: GateType.AND,
    GateType.OR: GateType.NOR,
    GateType.NOR: GateType.OR,
    GateType.XOR: GateType.XNOR,
    GateType.XNOR: GateType.XOR,
    GateType.INV: GateType.BUF,
    GateType.BUF: GateType.INV,
    GateType.CONST0: GateType.CONST1,
    GateType.CONST1: GateType.CONST0,
}

_DUAL = {
    GateType.AND: GateType.OR,
    GateType.OR: GateType.AND,
    GateType.NAND: GateType.NOR,
    GateType.NOR: GateType.NAND,
}


def base_type(gtype: GateType) -> GateType:
    """Return the base function of *gtype* with inversion stripped.

    ``NAND -> AND``, ``XNOR -> XOR``, ``INV -> BUF`` and so on.
    """
    return _BASE[gtype]


def is_inverted(gtype: GateType) -> bool:
    """True if *gtype* complements its base function (NAND/NOR/XNOR/INV)."""
    return gtype in INVERTED_TYPES


def complement_type(gtype: GateType) -> GateType:
    """Return the type computing the complement function (AND <-> NAND...)."""
    return _COMPLEMENT[gtype]


def demorgan_dual(gtype: GateType) -> GateType:
    """Return the DeMorgan dual of an and-or class type.

    ``AND <-> OR`` and ``NAND <-> NOR``.  Used by the cross-supergate
    swapping of Definition 4 / Theorem 2.  Raises :class:`ValueError`
    for types outside the and-or class, mirroring the paper's
    restriction ``type(SG) in {AND, OR}``.
    """
    try:
        return _DUAL[gtype]
    except KeyError:
        raise ValueError(f"DeMorgan dual undefined for {gtype}") from None


def controlling_value(gtype: GateType) -> int | None:
    """``cv(g)`` of Section 2.0: the input value that determines the output.

    Returns ``None`` for XOR-class, wire and constant types which have
    no controlling value.
    """
    return _CONTROLLING.get(base_type(gtype))


def noncontrolling_value(gtype: GateType) -> int | None:
    """``ncv(g)``: the opposite of the controlling value (or ``None``)."""
    cv = controlling_value(gtype)
    if cv is None:
        return None
    return 1 - cv


def forcing_output_value(gtype: GateType) -> int | None:
    """Output value of *gtype* that forces every input by backward implication.

    For AND the output 1 implies all inputs 1; for NAND the output 0
    implies all inputs 1; for OR output 0 implies inputs 0; for NOR
    output 1 implies inputs 0.  This is the value ``ncv(g)`` seen at the
    out-pin, adjusted for an inverted type.  ``None`` when no backward
    implication is possible (XOR-class, constants).  INV/BUF force their
    single input for *any* output value, so they are handled separately
    by the implication engine and return ``None`` here.
    """
    ncv = noncontrolling_value(gtype)
    if ncv is None:
        return None
    if is_inverted(gtype):
        return 1 - ncv
    return ncv


def forced_input_value(gtype: GateType) -> int | None:
    """The value every in-pin takes when the forcing output value is applied."""
    return noncontrolling_value(gtype)


def eval_gate(gtype: GateType, inputs: list[int], mask: int = 1) -> int:
    """Evaluate *gtype* over bit-parallel integer words.

    Every element of *inputs* is an arbitrary-precision integer whose
    bits are independent simulation vectors; *mask* selects the active
    bit width (e.g. ``(1 << 64) - 1`` for 64 parallel patterns).  The
    same routine therefore serves single-pattern, 64-bit parallel and
    full-truth-table simulation.
    """
    if gtype is GateType.CONST0:
        return 0
    if gtype is GateType.CONST1:
        return mask
    if not inputs:
        raise ValueError(f"gate of type {gtype} needs at least one input")
    base = base_type(gtype)
    if base is GateType.AND:
        acc = mask
        for word in inputs:
            acc &= word
    elif base is GateType.OR:
        acc = 0
        for word in inputs:
            acc |= word
    elif base is GateType.XOR:
        acc = 0
        for word in inputs:
            acc ^= word
    else:  # BUF / INV
        if len(inputs) != 1:
            raise ValueError(f"{gtype} takes exactly one input")
        acc = inputs[0]
    if is_inverted(gtype):
        acc = ~acc & mask
    return acc & mask


def min_arity(gtype: GateType) -> int:
    """Minimum number of in-pins for a gate of this type."""
    if gtype in CONST_TYPES:
        return 0
    if gtype in WIRE_TYPES:
        return 1
    return 2


def max_arity(gtype: GateType) -> int | None:
    """Maximum number of in-pins (``None`` = unbounded for logic types)."""
    if gtype in CONST_TYPES:
        return 0
    if gtype in WIRE_TYPES:
        return 1
    return None
