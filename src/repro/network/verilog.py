"""Structural Verilog reader / writer.

Gate-level Verilog is the lingua franca of physical-design handoffs;
supporting it makes the rewiring engine usable on netlists coming from
commercial flows.  The reader accepts the structural subset — one
module, ``input``/``output``/``wire`` declarations, and primitive gate
instantiations (``nand (y, a, b);``) or instances of cells named like
the bundled library (``NAND2_X2 u1 (.Y(y), .A(a), .B(b));``).  The
writer emits primitive-gate Verilog that any structural tool accepts.
"""

from __future__ import annotations

import io
import re
from typing import TextIO

from .gatetype import GateType
from .netlist import Network, NetworkError

_PRIMITIVES = {
    "and": GateType.AND,
    "or": GateType.OR,
    "nand": GateType.NAND,
    "nor": GateType.NOR,
    "xor": GateType.XOR,
    "xnor": GateType.XNOR,
    "not": GateType.INV,
    "buf": GateType.BUF,
}

_PRIMITIVE_NAMES = {
    GateType.AND: "and",
    GateType.OR: "or",
    GateType.NAND: "nand",
    GateType.NOR: "nor",
    GateType.XOR: "xor",
    GateType.XNOR: "xnor",
    GateType.INV: "not",
    GateType.BUF: "buf",
}

_CELL_RE = re.compile(r"^([A-Za-z_][\w]*)\s*(?:#\(.*?\))?\s*"
                      r"([A-Za-z_][\w$]*)?\s*\((.*)\)$", re.S)
_PORT_RE = re.compile(r"\.\s*([\w]+)\s*\(\s*([\w$\[\].]+)\s*\)")
_CELL_FUNC_RE = re.compile(r"^(NAND|NOR|XOR|XNOR|INV|BUF)(\d*)_X\d+$")


def _statements(text: str):
    """Strip comments, yield semicolon-terminated statements."""
    text = re.sub(r"//.*?$", "", text, flags=re.M)
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.S)
    for statement in text.split(";"):
        statement = statement.strip()
        if statement:
            yield statement


def parse_verilog(text: str, name: str | None = None) -> Network:
    """Parse structural Verilog into a :class:`Network`."""
    module_name = name or "top"
    inputs: list[str] = []
    outputs: list[str] = []
    gates: list[tuple[str, GateType, list[str], str | None]] = []
    for statement in _statements(text):
        head = statement.split(None, 1)[0]
        if head == "module":
            match = re.match(r"module\s+([\w$]+)", statement)
            if match and name is None:
                module_name = match.group(1)
            continue
        if head == "endmodule":
            continue
        if head in ("input", "output", "wire"):
            rest = statement[len(head):]
            rest = re.sub(r"\[[^\]]*\]", "", rest)  # no vectors supported
            names = [n.strip() for n in rest.split(",") if n.strip()]
            if head == "input":
                inputs.extend(names)
            elif head == "output":
                outputs.extend(names)
            continue
        if head in _PRIMITIVES:
            # e.g.  nand g1 (y, a, b);   instance name optional
            match = re.match(
                rf"{head}\s*([\w$]*)\s*\((.*)\)$", statement, re.S
            )
            if not match:
                raise NetworkError(f"unparseable gate: {statement!r}")
            ports = [p.strip() for p in match.group(2).split(",")]
            out, fanins = ports[0], ports[1:]
            gates.append((out, _PRIMITIVES[head], fanins, None))
            continue
        match = _CELL_RE.match(statement)
        if match:
            cell_name, _instance, ports_text = match.groups()
            func = _CELL_FUNC_RE.match(cell_name)
            if func is None:
                raise NetworkError(
                    f"unknown cell or construct: {statement!r}"
                )
            gtype = GateType[func.group(1)]
            ports = dict(_PORT_RE.findall(ports_text))
            out = ports.pop("Y", None) or ports.pop("Z", None)
            if out is None:
                raise NetworkError(
                    f"instance without Y/Z output: {statement!r}"
                )
            fanins = [ports[key] for key in sorted(ports)]
            gates.append((out, gtype, fanins, cell_name))
            continue
        raise NetworkError(f"unsupported construct: {statement!r}")

    network = Network(module_name)
    for pi in inputs:
        network.add_input(pi)
    const_nets: dict[str, str] = {}

    def operand(token: str) -> str:
        if token in ("1'b0", "1'b1"):
            if token not in const_nets:
                net = network.fresh_name(
                    "const0" if token.endswith("0") else "const1"
                )
                network.add_gate(
                    net,
                    GateType.CONST0 if token.endswith("0")
                    else GateType.CONST1,
                    [],
                )
                const_nets[token] = net
            return const_nets[token]
        return token

    for out, gtype, fanins, cell in gates:
        resolved = [operand(f) for f in fanins]
        network.add_gate(out, gtype, resolved, cell=cell)
    for po in outputs:
        if po not in network:
            raise NetworkError(f"output {po!r} is never driven")
        network.add_output(po)
    return network


def read_verilog(handle: TextIO, name: str | None = None) -> Network:
    """Read structural Verilog from a file object."""
    return parse_verilog(handle.read(), name=name)


def write_verilog(network: Network, handle: TextIO) -> None:
    """Write the network as primitive-gate structural Verilog."""
    ports = list(network.inputs) + [
        f"po{index}" for index in range(len(network.outputs))
    ]
    handle.write(f"module {_ident(network.name)} (\n    ")
    handle.write(", ".join(_ident(p) for p in ports))
    handle.write("\n);\n")
    for pi in network.inputs:
        handle.write(f"  input {_ident(pi)};\n")
    for index in range(len(network.outputs)):
        handle.write(f"  output po{index};\n")
    for name in network.gate_names():
        handle.write(f"  wire {_ident(name)};\n")
    handle.write("\n")
    counter = 0
    for name in network.topo_order():
        gate = network.gate(name)
        if gate.gtype is GateType.CONST0:
            handle.write(f"  buf g{counter} ({_ident(name)}, 1'b0);\n")
        elif gate.gtype is GateType.CONST1:
            handle.write(f"  buf g{counter} ({_ident(name)}, 1'b1);\n")
        else:
            primitive = _PRIMITIVE_NAMES[gate.gtype]
            operands = ", ".join(_ident(f) for f in gate.fanins)
            handle.write(
                f"  {primitive} g{counter} ({_ident(name)}, {operands});\n"
            )
        counter += 1
    for index, po in enumerate(network.outputs):
        handle.write(f"  buf g{counter} (po{index}, {_ident(po)});\n")
        counter += 1
    handle.write("endmodule\n")


def verilog_text(network: Network) -> str:
    """Serialize to a string."""
    buffer = io.StringIO()
    write_verilog(network, buffer)
    return buffer.getvalue()


def _ident(name: str) -> str:
    """Escape identifiers Verilog would reject."""
    if re.fullmatch(r"[A-Za-z_][\w$]*", name):
        return name
    return f"\\{name} "
