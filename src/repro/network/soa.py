"""Array-native netlist kernel: one structure-of-arrays core per network.

The :class:`~repro.network.netlist.Network` object API stays the
mutation facade; this module is the shared flat view every engine used
to build privately.  One :class:`SoAKernel` per network owns

* the :class:`~repro.logic.simcore.compiled.CompiledNetwork` flat form
  (opcode / fanin-CSR / fanout adjacency), kept current by *patching*
  it in place on pin-rewiring events instead of recompiling — this is
  the object :func:`repro.logic.simcore.compiled.get_compiled` now
  hands out, so simcore, STA and the wirelength engine all read the
  same arrays behind one shared version/revision counter;
* the per-gate cell bindings in compiled order (sizing moves patch
  them without touching the logic arrays);
* lazily built numpy mirrors (:meth:`SoAKernel.arrays`): int/bool
  copies of the compiled lists, STA-flavor topological levels, and a
  consumer CSR (edges grouped by driven net) — everything the masked
  vector STA pass and the vectorized HPWL rebuild gather from.

Synchronisation contract: the kernel subscribes to the network's typed
mutation events.  ``REPLACE_FANIN``/``SWAP_FANINS`` are absorbed as
in-place patches (``compiled.revision`` bumps, numpy mirrors rebuild
lazily), ``SET_CELL`` patches the binding table, and every structural
kind marks the kernel stale so the next :meth:`SoAKernel.sync` does a
full recompile (``epoch`` bumps).  A patch that cannot keep the stored
topological order valid also falls back to stale — consumers only ever
see arrays consistent with the live network.
"""

from __future__ import annotations

import weakref

from ..logic.simcore.compiled import (
    CompiledNetwork,
    compile_network,
)
from . import events
from .netlist import Network

try:  # pragma: no cover - exercised via the numpy-present suite
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

#: Events absorbed as cell-binding table patches.
_CELL_KINDS = frozenset({events.SET_CELL})
#: Structural events: the flat form is rebuilt at the next sync.
_STALE_KINDS = frozenset({
    events.SET_FANINS,
    events.SET_GATE_TYPE,
    events.ADD_GATE,
    events.REMOVE_GATE,
    events.ADD_INPUT,
    events.ADD_OUTPUT,
    events.REPLACE_OUTPUT,
    events.RESTORE,
    events.UNKNOWN,
})


def sta_levels(compiled: CompiledNetwork) -> tuple[list[int], list[int]]:
    """Topological levels in the STA convention, from the flat form.

    Primary inputs sit at level 0 and every gate at
    ``1 + max(fanin levels)`` (``1`` for constants, which have no
    fanins) — exactly the ``TimingEngine`` ``_levels`` formula, so the
    vector pass orders its sweeps identically to the scalar worklist.
    Returns ``(gate_level, net_level)`` indexed by topological position
    and net index respectively.
    """
    base = compiled.num_inputs
    net_level = [0] * compiled.num_nets
    gate_level = [0] * compiled.num_gates
    offset = compiled.fanin_offset
    flat = compiled.fanin_flat
    for position in range(compiled.num_gates):
        level = 0
        for slot in range(offset[position], offset[position + 1]):
            fanin_level = net_level[flat[slot]]
            if fanin_level > level:
                level = fanin_level
        level += 1
        gate_level[position] = level
        net_level[base + position] = level
    return gate_level, net_level


class SoAKernel:
    """Structure-of-arrays core for one network (see module docstring)."""

    def __init__(self, network: Network) -> None:
        self._network_ref = weakref.ref(network)
        self.compiled: CompiledNetwork | None = None
        #: cell binding per topological position (compiled order)
        self.cells: list[str | None] = []
        #: full-rebuild counter; ``(epoch, compiled.revision)`` keys
        #: every derived structure
        self.epoch = 0
        self.rebuilds = 0
        self.patches = 0
        self._version = -1
        self._stale = True
        self._np: dict | None = None
        self._np_key: tuple[int, int] | None = None
        network.subscribe(self)

    # ------------------------------------------------------------------
    # event intake
    # ------------------------------------------------------------------
    def notify_network_event(self, kind: str, data: dict) -> None:
        if kind == events.REPLACE_FANIN:
            if self._stale or self.compiled is None:
                return
            self._absorb(self._patch_pin(data["pin"], data["new"]))
        elif kind == events.SWAP_FANINS:
            if self._stale or self.compiled is None:
                return
            ok = self._patch_pin(data["pin_a"], data["net_b"])
            ok = self._patch_pin(data["pin_b"], data["net_a"]) and ok
            self._absorb(ok)
        elif kind in _CELL_KINDS:
            if self._stale or self.compiled is None:
                return
            self._absorb(self._patch_cell(data["gate"]))
        elif kind in _STALE_KINDS:
            self._stale = True
        else:
            self._stale = True

    def _absorb(self, ok: bool) -> None:
        """Record a successful in-place patch, or fall back to stale."""
        network = self._network_ref()
        if ok and network is not None:
            self._version = network.version
            self.compiled.version = network.version
        else:
            self._stale = True

    def _patch_pin(self, pin, net: str) -> bool:
        compiled = self.compiled
        index = compiled.net_index.get(pin.gate)
        if index is None or index < compiled.num_inputs:
            return False
        position = index - compiled.num_inputs
        width = (
            compiled.fanin_offset[position + 1]
            - compiled.fanin_offset[position]
        )
        if not 0 <= pin.index < width:
            return False
        self.patches += 1
        return compiled.patch_fanin(position, pin.index, net)

    def _patch_cell(self, gate: str) -> bool:
        network = self._network_ref()
        if network is None:
            return False
        compiled = self.compiled
        index = compiled.net_index.get(gate)
        if index is None or index < compiled.num_inputs:
            return False
        self.cells[index - compiled.num_inputs] = network.gate(gate).cell
        return True

    # ------------------------------------------------------------------
    # synchronisation + derived arrays
    # ------------------------------------------------------------------
    @property
    def synced(self) -> bool:
        network = self._network_ref()
        return (
            network is not None
            and not self._stale
            and self.compiled is not None
            and self._version == network.version
        )

    def sync(self) -> CompiledNetwork:
        """Current flat form, rebuilding from the network if stale."""
        network = self._network_ref()
        if network is None:
            raise ReferenceError("network was garbage-collected")
        if (
            self._stale
            or self.compiled is None
            or self._version != network.version
        ):
            self.compiled = compile_network(network)
            self.cells = [
                network.gate(name).cell
                for name in self.compiled.gate_names
            ]
            self.epoch += 1
            self.rebuilds += 1
            self._version = network.version
            self._stale = False
            self._np = None
            self._np_key = None
        return self.compiled

    def arrays(self) -> dict | None:
        """Numpy mirrors of the flat form, rebuilt per (epoch, revision).

        ``None`` when numpy is unavailable.  Keys:

        ``opcode``/``invert``
            per-gate base opcode (int32) and inversion flag (bool);
        ``fanin_offset``/``fanin_flat``/``fanin_counts``
            the fanin CSR as int64 arrays;
        ``gate_level``/``net_level``
            STA-flavor levels (:func:`sta_levels`) as int64;
        ``num_levels``
            ``1 + max(gate_level)`` (1 when there are no gates);
        ``consumer_offset``/``consumer_counts``/``consumer_gate``/\
``consumer_pin``/``consumer_slot``
            consumer CSR: for net ``i`` the edge range
            ``consumer_offset[i]:consumer_offset[i+1]`` lists every
            (gate position, pin index) pair reading the net — plus the
            originating fanin-CSR slot — grouped by net in stable
            fanin-slot order;
        ``po_counts``
            primary-output listings per net (int64);
            ``consumer_counts + po_counts`` is the array form of
            :meth:`~repro.network.netlist.Network.fanout_degree`, the
            boundary test of supergate growth and symmetry coloring.
        """
        if np is None:
            return None
        compiled = self.sync()
        key = (self.epoch, compiled.revision)
        if self._np_key != key:
            self._np = _build_arrays(compiled)
            self._np_key = key
        return self._np

    def location_table(self, placement) -> "np.ndarray | None":
        """(num_gates, 2) float64 gate locations in compiled order.

        ``None`` when numpy is unavailable or any compiled gate is
        missing from *placement* (callers fall back to their scalar
        path, which raises the same ``KeyError`` the object walk did).
        """
        if np is None:
            return None
        compiled = self.sync()
        locations = placement.locations
        table = np.empty((compiled.num_gates, 2), dtype=np.float64)
        for position, name in enumerate(compiled.gate_names):
            point = locations.get(name)
            if point is None:
                return None
            table[position, 0] = point[0]
            table[position, 1] = point[1]
        return table


def ragged_indices(starts, counts):
    """Flat source indices for a ragged multi-segment gather.

    Given per-segment source *starts* and *counts* (CSR slices to pull
    together), returns ``(indices, seg_starts)`` where ``indices`` lays
    each segment's ``starts[i] .. starts[i]+counts[i]`` range out
    consecutively and ``seg_starts`` marks each segment's first
    position in that layout (for ``ufunc.reduceat`` folds over the
    gathered values; empty segments must be masked out by the caller).
    """
    total = int(counts.sum())
    seg_starts = np.concatenate(
        ([0], np.cumsum(counts)[:-1])
    ).astype(np.int64)
    if total == 0:
        return np.empty(0, dtype=np.int64), seg_starts
    indices = (
        np.arange(total, dtype=np.int64)
        - np.repeat(seg_starts, counts)
        + np.repeat(starts, counts)
    )
    return indices, seg_starts


def _build_arrays(compiled: CompiledNetwork) -> dict:
    gate_level, net_level = sta_levels(compiled)
    fanin_offset = np.asarray(compiled.fanin_offset, dtype=np.int64)
    fanin_flat = np.asarray(compiled.fanin_flat, dtype=np.int64)
    fanin_counts = np.diff(fanin_offset)
    num_gates = compiled.num_gates
    num_nets = compiled.num_nets
    # consumer CSR: sort the edge slots by driven net; a stable sort
    # keeps each net's edges in (gate, pin) slot order
    owner = np.repeat(np.arange(num_gates, dtype=np.int64), fanin_counts)
    slot_pin = (
        np.arange(len(fanin_flat), dtype=np.int64)
        - np.repeat(fanin_offset[:-1], fanin_counts)
    )
    order = np.argsort(fanin_flat, kind="stable")
    consumer_counts = np.bincount(fanin_flat, minlength=num_nets)
    consumer_offset = np.concatenate(
        ([0], np.cumsum(consumer_counts))
    ).astype(np.int64)
    gate_level_np = np.asarray(gate_level, dtype=np.int64)
    return {
        "opcode": np.asarray(compiled.opcode, dtype=np.int32),
        "invert": np.asarray(compiled.invert, dtype=bool),
        "fanin_offset": fanin_offset,
        "fanin_flat": fanin_flat,
        "fanin_counts": fanin_counts,
        "gate_level": gate_level_np,
        "net_level": np.asarray(net_level, dtype=np.int64),
        "num_levels": int(gate_level_np.max()) + 1 if num_gates else 1,
        "consumer_offset": consumer_offset,
        "consumer_counts": consumer_counts.astype(np.int64),
        "consumer_gate": owner[order],
        "consumer_pin": slot_pin[order],
        "consumer_slot": order,
        "po_counts": np.bincount(
            np.asarray(compiled.po_index, dtype=np.int64),
            minlength=num_nets,
        ).astype(np.int64),
    }


_KERNELS: "weakref.WeakKeyDictionary[Network, SoAKernel]" = (
    weakref.WeakKeyDictionary()
)


def get_soa(network: Network) -> SoAKernel:
    """The per-network kernel, created on first use.

    The kernel holds the network weakly (the cache would otherwise pin
    its own keys alive) and subscribes to its mutation events, so a
    cached kernel is always either in sync or marked stale.
    """
    kernel = _KERNELS.get(network)
    if kernel is None:
        kernel = SoAKernel(network)
        _KERNELS[network] = kernel
    return kernel
