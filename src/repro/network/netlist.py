"""Mapped Boolean network: a DAG of single-output gates.

Section 2.0 of the paper models the circuit as a directed acyclic graph
whose vertices are logic gates and whose edges are interconnects.  Every
gate has in-pins and a single out-pin, and "we do not distinguish
between the name of the gate and its out-pin" — the same convention is
used here: the *net* driven by gate ``g`` is simply named ``g``.
Primary inputs are nets with no driving gate.

The structure is deliberately string-keyed: a pin is the pair
``(gate name, fanin index)``, and rewiring operations are nothing more
than assignments into ``Gate.fanins``.  A monotonically increasing
``version`` counter lets analyses (fanout maps, topological orders,
timing graphs) cache against a network snapshot and detect staleness.

Incremental analyses additionally need to know *what* changed, not
just *that* something changed: every mutating method therefore emits a
typed mutation event to subscribed listeners (held weakly, so a
forgotten engine never leaks).  Event kinds and operand schemas are
declared once in :mod:`repro.network.events`; emission sites here pass
those constants and are statically checked against the registry by
``python -m tools.lint``.  A mutation performed outside these methods
still bumps the version through :meth:`Network._touch`, which then
emits the catch-all :data:`repro.network.events.UNKNOWN` event —
listeners treat it as a full invalidation, so bypassing the typed
mutators is safe, merely slower.  The event taxonomy and each engine's
invalidation rules are documented in ``docs/architecture.md``.
"""

from __future__ import annotations

import weakref

from dataclasses import dataclass, field
from typing import Iterable, Iterator, NamedTuple, Protocol

from . import events
from .gatetype import (
    CONST_TYPES,
    GateType,
    eval_gate,
    max_arity,
    min_arity,
)


class Pin(NamedTuple):
    """An in-pin of a gate, addressed as (gate name, fanin index)."""

    gate: str
    index: int

    def __str__(self) -> str:
        return f"{self.gate}[{self.index}]"


class NetworkError(Exception):
    """Raised on structurally invalid network operations."""


class NetworkListener(Protocol):
    """Anything that wants to observe network mutations.

    ``kind`` names the mutation (``"add_gate"``, ``"replace_fanin"``,
    ...); ``data`` carries its operands.  The ``"unknown"`` kind means
    an untracked mutation happened and all cached state derived from
    the network must be considered stale.
    """

    def notify_network_event(self, kind: str, data: dict) -> None: ...


@dataclass
class Gate:
    """A single-output logic gate.

    ``fanins`` holds *net names* in pin order; the out-pin net carries
    the gate's own name.  ``cell`` names the bound library cell once the
    network is technology-mapped (``None`` for a generic logic network).
    """

    name: str
    gtype: GateType
    fanins: list[str] = field(default_factory=list)
    cell: str | None = None

    def arity(self) -> int:
        """Number of in-pins."""
        return len(self.fanins)

    def eval(self, input_words: list[int], mask: int = 1) -> int:
        """Evaluate the gate over bit-parallel words (see ``eval_gate``)."""
        return eval_gate(self.gtype, input_words, mask)

    def pins(self) -> Iterator[Pin]:
        """Iterate over this gate's in-pins."""
        for index in range(len(self.fanins)):
            yield Pin(self.name, index)


class Network:
    """A combinational Boolean network.

    The class offers the queries every later stage needs — drivers,
    fanout maps, topological order, cones — and the primitive mutations
    rewiring is built from.  Mutations bump :attr:`version`; cached
    derived structures are recomputed lazily when the version moves.
    """

    def __init__(self, name: str = "top") -> None:
        self.name = name
        self.inputs: list[str] = []
        self.outputs: list[str] = []
        self._gates: dict[str, Gate] = {}
        self._input_set: set[str] = set()
        self.version = 0
        self._fanout_cache: dict[str, list[Pin]] | None = None
        self._fanout_version = -1
        self._po_count_cache: dict[str, int] | None = None
        self._po_count_version = -1
        self._topo_cache: list[str] | None = None
        self._topo_version = -1
        self._listeners: weakref.WeakSet[NetworkListener] = weakref.WeakSet()

    # ------------------------------------------------------------------
    # mutation events
    # ------------------------------------------------------------------
    def subscribe(self, listener: NetworkListener) -> None:
        """Register a mutation listener (held weakly)."""
        self._listeners.add(listener)

    def unsubscribe(self, listener: NetworkListener) -> None:
        """Remove a previously subscribed listener (no-op if absent)."""
        self._listeners.discard(listener)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_input(self, name: str) -> str:
        """Declare a primary input net."""
        if name in self._input_set:
            raise NetworkError(f"duplicate primary input {name!r}")
        if name in self._gates:
            raise NetworkError(f"net {name!r} already driven by a gate")
        self.inputs.append(name)
        self._input_set.add(name)
        self._touch((events.ADD_INPUT, {"net": name}))
        return name

    def add_output(self, net: str) -> str:
        """Declare *net* a primary output (it may also feed other gates)."""
        self.outputs.append(net)
        self._touch((events.ADD_OUTPUT, {"net": net}))
        return net

    def add_gate(
        self,
        name: str,
        gtype: GateType,
        fanins: Iterable[str] = (),
        cell: str | None = None,
    ) -> Gate:
        """Create a gate driving net *name*; fanin nets need not exist yet."""
        if name in self._gates:
            raise NetworkError(f"duplicate gate {name!r}")
        if name in self._input_set:
            raise NetworkError(f"net {name!r} is a primary input")
        fanin_list = list(fanins)
        lo, hi = min_arity(gtype), max_arity(gtype)
        if len(fanin_list) < lo or (hi is not None and len(fanin_list) > hi):
            raise NetworkError(
                f"gate {name!r}: {gtype.name} cannot take {len(fanin_list)} fanins"
            )
        gate = Gate(name=name, gtype=gtype, fanins=fanin_list, cell=cell)
        self._gates[name] = gate
        self._touch((
            events.ADD_GATE, {"gate": name, "fanins": tuple(fanin_list)}
        ))
        return gate

    def remove_gate(self, name: str) -> None:
        """Delete a gate; fails if its output net still has consumers."""
        if name not in self._gates:
            raise NetworkError(f"no gate {name!r}")
        consumers = self.fanout(name)
        if consumers:
            raise NetworkError(
                f"gate {name!r} still drives {len(consumers)} pins"
            )
        if name in self.outputs:
            raise NetworkError(f"gate {name!r} is a primary output")
        fanins = tuple(self._gates[name].fanins)
        del self._gates[name]
        self._touch((events.REMOVE_GATE, {"gate": name, "fanins": fanins}))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, net: str) -> bool:
        return net in self._gates or net in self._input_set

    def __len__(self) -> int:
        return len(self._gates)

    def gate(self, name: str) -> Gate:
        """Return the gate driving net *name*."""
        try:
            return self._gates[name]
        except KeyError:
            raise NetworkError(f"no gate drives net {name!r}") from None

    def gates(self) -> Iterator[Gate]:
        """Iterate over all gates in insertion order."""
        return iter(self._gates.values())

    def gate_names(self) -> Iterator[str]:
        """Iterate over all gate (= internal net) names."""
        return iter(self._gates.keys())

    def nets(self) -> Iterator[str]:
        """Iterate over every net: primary inputs then gate outputs."""
        yield from self.inputs
        yield from self._gates.keys()

    def is_input(self, net: str) -> bool:
        """True if *net* is a primary input."""
        return net in self._input_set

    def driver(self, net: str) -> Gate | None:
        """Gate driving *net*, or ``None`` for a primary input."""
        gate = self._gates.get(net)
        if gate is None and net not in self._input_set:
            raise NetworkError(f"unknown net {net!r}")
        return gate

    def fanin_net(self, pin: Pin) -> str:
        """Net connected to *pin*."""
        return self.gate(pin.gate).fanins[pin.index]

    def fanout(self, net: str) -> list[Pin]:
        """All in-pins the net drives (primary-output use not included)."""
        return self._fanout_map().get(net, [])

    def fanout_degree(self, net: str) -> int:
        """Number of sink pins plus one per primary-output listing."""
        if (
            self._po_count_cache is None
            or self._po_count_version != self.version
        ):
            counts: dict[str, int] = {}
            for output in self.outputs:
                counts[output] = counts.get(output, 0) + 1
            self._po_count_cache = counts
            self._po_count_version = self.version
        return len(self.fanout(net)) + self._po_count_cache.get(net, 0)

    def _fanout_map(self) -> dict[str, list[Pin]]:
        if self._fanout_cache is None or self._fanout_version != self.version:
            fanout: dict[str, list[Pin]] = {}
            for gate in self._gates.values():
                for index, net in enumerate(gate.fanins):
                    fanout.setdefault(net, []).append(Pin(gate.name, index))
            self._fanout_cache = fanout
            self._fanout_version = self.version
        return self._fanout_cache

    def topo_order(self) -> list[str]:
        """Gate names in topological order (fanins before fanouts).

        Raises :class:`NetworkError` when the network contains a
        combinational cycle.
        """
        if self._topo_cache is not None and self._topo_version == self.version:
            return self._topo_cache
        indegree: dict[str, int] = {}
        for gate in self._gates.values():
            count = 0
            for net in gate.fanins:
                if net in self._gates:
                    count += 1
                elif net not in self._input_set:
                    raise NetworkError(
                        f"gate {gate.name!r} references unknown net {net!r}"
                    )
            indegree[gate.name] = count
        ready = [name for name, deg in indegree.items() if deg == 0]
        order: list[str] = []
        fanout = self._fanout_map()
        cursor = 0
        while cursor < len(ready):
            name = ready[cursor]
            cursor += 1
            order.append(name)
            for pin in fanout.get(name, ()):
                indegree[pin.gate] -= 1
                if indegree[pin.gate] == 0:
                    ready.append(pin.gate)
        if len(order) != len(self._gates):
            raise NetworkError("network contains a combinational cycle")
        self._topo_cache = order
        self._topo_version = self.version
        return order

    def levels(self) -> dict[str, int]:
        """Logic level of every net (PIs at level 0)."""
        level = {net: 0 for net in self.inputs}
        for name in self.topo_order():
            gate = self._gates[name]
            if gate.gtype in CONST_TYPES:
                level[name] = 0
            else:
                level[name] = 1 + max(level[f] for f in gate.fanins)
        return level

    def depth(self) -> int:
        """Maximum logic level over all nets (0 for an empty network)."""
        levels = self.levels()
        return max(levels.values(), default=0)

    def fanin_cone(self, net: str) -> set[str]:
        """Transitive fanin of *net*, including *net*, excluding PIs."""
        cone: set[str] = set()
        stack = [net]
        while stack:
            current = stack.pop()
            if current in cone or current in self._input_set:
                continue
            cone.add(current)
            stack.extend(self._gates[current].fanins)
        return cone

    def cone_inputs(self, net: str) -> list[str]:
        """Primary inputs feeding the cone of *net*, in PI order."""
        cone = self.fanin_cone(net)
        support: set[str] = set()
        if net in self._input_set:
            return [net]
        for name in cone:
            for fanin in self._gates[name].fanins:
                if fanin in self._input_set:
                    support.add(fanin)
        return [pi for pi in self.inputs if pi in support]

    def fanout_cone(self, net: str) -> set[str]:
        """Transitive fanout of *net* (gate names), excluding *net* itself."""
        cone: set[str] = set()
        stack = [pin.gate for pin in self.fanout(net)]
        while stack:
            current = stack.pop()
            if current in cone:
                continue
            cone.add(current)
            stack.extend(pin.gate for pin in self.fanout(current))
        return cone

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def _touch(self, event: tuple[str, dict] | None = None) -> None:
        self.version += 1
        if self._listeners:
            kind, data = event if event is not None else (events.UNKNOWN, {})
            for listener in tuple(self._listeners):
                listener.notify_network_event(kind, data)

    def replace_fanin(self, pin: Pin, net: str) -> str:
        """Reconnect *pin* to *net*; returns the previously connected net."""
        gate = self.gate(pin.gate)
        if net not in self:
            raise NetworkError(f"unknown net {net!r}")
        old = gate.fanins[pin.index]
        gate.fanins[pin.index] = net
        self._touch((
            events.REPLACE_FANIN, {"pin": pin, "old": old, "new": net}
        ))
        return old

    def swap_fanins(self, pin_a: Pin, pin_b: Pin) -> None:
        """Exchange the nets feeding two pins (a non-inverting swap)."""
        net_a = self.fanin_net(pin_a)
        net_b = self.fanin_net(pin_b)
        self.gate(pin_a.gate).fanins[pin_a.index] = net_b
        self.gate(pin_b.gate).fanins[pin_b.index] = net_a
        self._touch((
            events.SWAP_FANINS,
            {"pin_a": pin_a, "pin_b": pin_b, "net_a": net_a, "net_b": net_b},
        ))

    def replace_output(self, old: str, new: str) -> None:
        """Retarget every primary-output reference from *old* to *new*."""
        if new not in self:
            raise NetworkError(f"unknown net {new!r}")
        self.outputs = [new if net == old else net for net in self.outputs]
        self._touch((events.REPLACE_OUTPUT, {"old": old, "new": new}))

    def set_gate_type(self, name: str, gtype: GateType) -> None:
        """Change a gate's logic type in place (arity must stay legal)."""
        gate = self.gate(name)
        lo, hi = min_arity(gtype), max_arity(gtype)
        if gate.arity() < lo or (hi is not None and gate.arity() > hi):
            raise NetworkError(
                f"gate {name!r}: {gtype.name} cannot take {gate.arity()} fanins"
            )
        gate.gtype = gtype
        gate.cell = None
        self._touch((
            events.SET_GATE_TYPE, {"gate": name, "fanins": tuple(gate.fanins)}
        ))

    def set_cell(self, name: str, cell: str | None) -> None:
        """Rebind a gate to a library cell (``None`` unbinds)."""
        gate = self.gate(name)
        gate.cell = cell
        self._touch((
            events.SET_CELL, {"gate": name, "fanins": tuple(gate.fanins)}
        ))

    def set_fanins(self, name: str, fanins: Iterable[str]) -> None:
        """Replace a gate's whole fanin list.

        Arity is not validated against the current gate type: callers
        that shrink a gate (constant folding) fix the type right after.
        """
        gate = self.gate(name)
        old = tuple(gate.fanins)
        gate.fanins = list(fanins)
        self._touch((
            events.SET_FANINS,
            {"gate": name, "old": old, "new": tuple(gate.fanins)},
        ))

    def recent_gates(self, count: int) -> list[str]:
        """Names of the *count* most recently added gates (oldest first).

        Gate insertion order is preserved by the underlying dict; used
        by the optimizer to find inverters a rewiring move just created.
        """
        if count <= 0:
            return []
        names = list(self._gates.keys())
        return names[-count:]

    def fresh_name(self, prefix: str) -> str:
        """Return an unused net name starting with *prefix*."""
        if prefix not in self:
            return prefix
        counter = 0
        while True:
            candidate = f"{prefix}_{counter}"
            if candidate not in self:
                return candidate
            counter += 1

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Picklable view: listeners and derived caches stay behind.

        Subscribed listeners (timing engines, supergate caches) belong
        to *this* process; a pickled copy shipped to an evaluation
        worker must arrive unobserved.  The fanout/topo caches are
        cheap to rebuild and would only fatten the payload.
        """
        state = self.__dict__.copy()
        state["_listeners"] = None
        state["_fanout_cache"] = None
        state["_fanout_version"] = -1
        state["_topo_cache"] = None
        state["_topo_version"] = -1
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._listeners = weakref.WeakSet()

    def copy(self, name: str | None = None) -> "Network":
        """Deep-copy the network (gate objects are duplicated)."""
        other = Network(name or self.name)
        other.inputs = list(self.inputs)
        other._input_set = set(self._input_set)
        other.outputs = list(self.outputs)
        for gate in self._gates.values():
            other._gates[gate.name] = Gate(
                name=gate.name,
                gtype=gate.gtype,
                fanins=list(gate.fanins),
                cell=gate.cell,
            )
        other.version = 0
        return other

    def stats(self) -> dict[str, int]:
        """Simple size statistics used in reports."""
        by_type: dict[str, int] = {}
        for gate in self._gates.values():
            by_type[gate.gtype.name] = by_type.get(gate.gtype.name, 0) + 1
        return {
            "inputs": len(self.inputs),
            "outputs": len(self.outputs),
            "gates": len(self._gates),
            "depth": self.depth(),
            **{f"n_{key.lower()}": val for key, val in sorted(by_type.items())},
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Network({self.name!r}, pi={len(self.inputs)}, "
            f"po={len(self.outputs)}, gates={len(self._gates)})"
        )
