"""Primitive network transformations.

These are the mechanical edits the rest of the system composes:
inverter insertion/cancellation for inverting swaps (Lemma 7/8),
DeMorgan rewrites for cross-supergate swapping (Definition 4),
constant propagation and sweeping for the synthesis substrate, and
redundancy removal (Fig. 1).  All transforms preserve network
functionality except where explicitly documented otherwise.
"""

from __future__ import annotations

from .gatetype import (
    CONST_TYPES,
    GateType,
    complement_type,
    demorgan_dual,
    eval_gate,
)
from .netlist import Network, NetworkError, Pin
from .validate import dangling_gates


def insert_inverter(network: Network, pin: Pin) -> str:
    """Insert an INV between *pin* and its current driver.

    Returns the name of the new inverter net.  This *changes* the
    function seen at the pin; callers pair insertions so the overall
    network function is preserved (e.g. the two legs of an inverting
    swap).
    """
    source = network.fanin_net(pin)
    inv_name = network.fresh_name(f"{source}_inv")
    network.add_gate(inv_name, GateType.INV, [source])
    network.replace_fanin(pin, inv_name)
    return inv_name


def complement_net(
    network: Network, net: str, unstable_pins: frozenset[Pin] = frozenset()
) -> str:
    """Return a net computing the complement of *net*, creating an INV
    if needed.

    Reuse rules: if *net* is driven by an inverter, its input net is
    tapped directly (that net's driver never changes, so this is always
    safe); an existing inverter *of* *net* is shared only when its own
    in-pin is not in *unstable_pins* — pins a concurrent rewiring step
    is about to rebind, which would silently change the shared
    inverter's function.
    """
    driver = network.driver(net)
    if driver is not None and driver.gtype is GateType.INV:
        return driver.fanins[0]
    for sink in network.fanout(net):
        gate = network.gate(sink.gate)
        if gate.gtype is GateType.INV and sink not in unstable_pins:
            return gate.name
    inv_name = network.fresh_name(f"{net}_inv")
    network.add_gate(inv_name, GateType.INV, [net])
    return inv_name


def connect_inverted(
    network: Network,
    pin: Pin,
    net: str,
    unstable_pins: frozenset[Pin] = frozenset(),
) -> str:
    """Connect the complement of *net* to *pin* (see :func:`complement_net`).

    Returns the net finally connected to the pin.
    """
    target = complement_net(
        network, net, unstable_pins=unstable_pins | {pin}
    )
    network.replace_fanin(pin, target)
    return target


def swap_noninverting(network: Network, pin_a: Pin, pin_b: Pin) -> None:
    """Exchange the drivers of two pins without polarity change."""
    network.swap_fanins(pin_a, pin_b)


def swap_inverting(network: Network, pin_a: Pin, pin_b: Pin) -> None:
    """Exchange the drivers of two pins, complementing both signals.

    Per Definition 3 this connects ``k_i`` through an inverter to
    ``p_j`` and ``k_j`` through an inverter to ``p_i``.  Inverter pairs
    are cancelled where the drivers already are inverters.
    """
    net_a = network.fanin_net(pin_a)
    net_b = network.fanin_net(pin_b)
    unstable = frozenset({pin_a, pin_b})
    target_a = complement_net(network, net_b, unstable_pins=unstable)
    target_b = complement_net(network, net_a, unstable_pins=unstable)
    network.replace_fanin(pin_a, target_a)
    network.replace_fanin(pin_b, target_b)


def demorgan_gate(network: Network, name: str) -> None:
    """Apply DeMorgan's law to an AND/OR-class gate in place.

    ``AND(a, b) = NOR(a', b')`` and so on: the gate's type is replaced
    by the complement of its dual and every fanin is complemented.  The
    function of the net *name* is unchanged, so the network function is
    preserved.  Raises for XOR-class / wire gates.
    """
    gate = network.gate(name)
    new_type = complement_type(demorgan_dual(gate.gtype))
    for pin in list(gate.pins()):
        connect_inverted(network, pin, network.fanin_net(pin))
    network.set_gate_type(name, new_type)


def propagate_constants(network: Network) -> int:
    """Fold constant fanins through gates; returns number of gates folded.

    A gate with a controlling constant input becomes a constant; a gate
    with a non-controlling constant input drops that input (or becomes a
    buffer/inverter when one input remains).  Iterates to a fixpoint.
    """
    folded = 0
    changed = True
    while changed:
        changed = False
        for name in network.topo_order():
            gate = network.gate(name)
            if gate.gtype in CONST_TYPES:
                continue
            const_values: dict[int, int] = {}
            for index, fanin in enumerate(gate.fanins):
                driver = network.driver(fanin)
                if driver is not None and driver.gtype in CONST_TYPES:
                    const_values[index] = (
                        1 if driver.gtype is GateType.CONST1 else 0
                    )
            if not const_values:
                continue
            folded += 1
            changed = True
            _fold_gate(network, name, const_values)
    return folded


def _fold_gate(network: Network, name: str, const_values: dict[int, int]) -> None:
    """Rewrite gate *name* given constant values on some of its pins."""
    gate = network.gate(name)
    if len(const_values) == gate.arity():
        words = [const_values[i] for i in range(gate.arity())]
        value = eval_gate(gate.gtype, words, mask=1)
        network.set_fanins(name, [])
        network.set_gate_type(
            name, GateType.CONST1 if value else GateType.CONST0
        )
        return
    base_and_or = gate.gtype in (
        GateType.AND, GateType.NAND, GateType.OR, GateType.NOR
    )
    if base_and_or:
        from .gatetype import controlling_value, is_inverted

        cv = controlling_value(gate.gtype)
        if any(value == cv for value in const_values.values()):
            out = (0 if cv == 0 else 1)
            if is_inverted(gate.gtype):
                out = 1 - out
            network.set_fanins(name, [])
            network.set_gate_type(
                name, GateType.CONST1 if out else GateType.CONST0
            )
            return
        # all constants non-controlling: drop them
        keep = [
            net for index, net in enumerate(gate.fanins)
            if index not in const_values
        ]
        inverted = is_inverted(gate.gtype)
        network.set_fanins(name, keep)
        if len(keep) == 1:
            network.set_gate_type(
                name, GateType.INV if inverted else GateType.BUF
            )
        return
    # XOR class: constants toggle or preserve polarity
    parity = sum(const_values.values()) % 2
    keep = [
        net for index, net in enumerate(gate.fanins)
        if index not in const_values
    ]
    from .gatetype import is_inverted

    inverted = is_inverted(gate.gtype) ^ (parity == 1)
    network.set_fanins(name, keep)
    if len(keep) == 1:
        network.set_gate_type(name, GateType.INV if inverted else GateType.BUF)
    else:
        network.set_gate_type(
            name, GateType.XNOR if inverted else GateType.XOR
        )


def collapse_wire_pairs(network: Network) -> int:
    """Cancel INV-INV and BUF chains by retargeting their consumers.

    Returns the number of pins retargeted.  Dangling wire gates are left
    for :func:`sweep` to reclaim.
    """
    retargeted = 0
    for name in network.topo_order():
        gate = network.gate(name)
        if gate.gtype not in (GateType.INV, GateType.BUF):
            continue
        source = gate.fanins[0]
        source_driver = network.driver(source)
        target: str | None = None
        if gate.gtype is GateType.BUF:
            target = source
        elif (
            source_driver is not None
            and source_driver.gtype is GateType.INV
        ):
            target = source_driver.fanins[0]
        if target is None:
            continue
        for pin in list(network.fanout(name)):
            network.replace_fanin(pin, target)
            retargeted += 1
        if name in network.outputs and not network.is_input(target):
            network.replace_output(name, target)
            retargeted += 1
    return retargeted


def sweep(network: Network) -> int:
    """Remove gates not reachable from any primary output.

    Returns the number of gates removed.
    """
    removed = 0
    while True:
        dead = dangling_gates(network)
        if not dead:
            return removed
        # remove in reverse topological order so outputs are free first
        order = [name for name in network.topo_order() if name in dead]
        for name in reversed(order):
            try:
                network.remove_gate(name)
                removed += 1
            except NetworkError:
                # still referenced by another dead gate removed later
                continue


def cleanup(network: Network) -> dict[str, int]:
    """Run constant propagation, wire collapsing and sweep to fixpoint."""
    totals = {"folded": 0, "retargeted": 0, "swept": 0}
    while True:
        folded = propagate_constants(network)
        retargeted = collapse_wire_pairs(network)
        swept = sweep(network)
        totals["folded"] += folded
        totals["retargeted"] += retargeted
        totals["swept"] += swept
        if not (folded or retargeted or swept):
            return totals
