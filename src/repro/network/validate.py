"""Structural validation of Boolean networks.

Every flow stage (synthesis, mapping, placement, rewiring) calls
:func:`check_network` in its tests; a network that passes is a DAG of
well-formed gates whose primary outputs exist.  Violations are reported
all at once to make debugging transforms easier.
"""

from __future__ import annotations

from .gatetype import CONST_TYPES, max_arity, min_arity
from .netlist import Network, NetworkError


def network_problems(network: Network) -> list[str]:
    """Return a list of human-readable structural problems (empty = valid)."""
    problems: list[str] = []
    known = set(network.inputs) | set(network.gate_names())
    if len(set(network.inputs)) != len(network.inputs):
        problems.append("duplicate primary input names")
    for gate in network.gates():
        lo, hi = min_arity(gate.gtype), max_arity(gate.gtype)
        if gate.arity() < lo or (hi is not None and gate.arity() > hi):
            problems.append(
                f"gate {gate.name!r}: {gate.gtype.name} has illegal "
                f"arity {gate.arity()}"
            )
        if gate.gtype in CONST_TYPES and gate.fanins:
            problems.append(f"constant gate {gate.name!r} has fanins")
        for net in gate.fanins:
            if net not in known:
                problems.append(
                    f"gate {gate.name!r} references unknown net {net!r}"
                )
        if gate.name == "":
            problems.append("gate with empty name")
    for net in network.outputs:
        if net not in known:
            problems.append(f"primary output references unknown net {net!r}")
    if not problems:
        try:
            network.topo_order()
        except NetworkError as exc:
            problems.append(str(exc))
    return problems


def check_network(network: Network) -> None:
    """Raise :class:`NetworkError` when the network is malformed."""
    problems = network_problems(network)
    if problems:
        raise NetworkError(
            f"network {network.name!r} invalid: " + "; ".join(problems)
        )


def dangling_gates(network: Network) -> set[str]:
    """Gates whose output reaches no primary output (candidates for sweep)."""
    live: set[str] = set()
    stack = [net for net in network.outputs if not network.is_input(net)]
    while stack:
        net = stack.pop()
        if net in live or network.is_input(net):
            continue
        live.add(net)
        stack.extend(network.gate(net).fanins)
    return {name for name in network.gate_names() if name not in live}
