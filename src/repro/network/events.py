"""Canonical mutation-event registry: the single source of event truth.

Every mutation a :class:`~repro.network.netlist.Network` can announce
is declared here **once**, as a module-level constant whose value is
the historical wire string (so flow fingerprints are unaffected by the
move from bare strings to constants) plus an :class:`EventKind` entry
recording the operand schema and meaning.

Three consumers rely on this module being exhaustive:

* **emission sites** (`netlist.py`, the optimizer's snapshot restore in
  `sizing/coudert.py`) pass these constants to ``Network._touch`` with
  a payload dict whose keys must equal the registered operand tuple;
* **listeners** (`timing/sta.py`, `place/hpwl.py`,
  `logic/simcore/engine.py`, `rapids/engine.py`) dispatch on these
  constants and must handle — or explicitly ignore — every registered
  kind;
* **tooling**: ``python -m tools.lint`` statically verifies both rules
  above against this registry, and ``python -m tools.lint --fix-docs``
  regenerates the event table in ``docs/architecture.md`` from it, so
  code and docs cannot drift apart.

Adding a kind therefore means: add the constant and registry entry
here, emit it with a schema-matching payload, teach all four listeners
about it, then run ``python -m tools.lint --fix-docs`` — the linter
fails CI until every step is done.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EventKind:
    """Schema of one mutation-event kind.

    ``operands`` names the payload-dict keys, in documentation order;
    ``meaning`` is the one-line description rendered into
    ``docs/architecture.md``; ``structural`` is true when the kind can
    change the gate/net structure itself (as opposed to rebinding a
    cell or retargeting IO on an unchanged structure).
    """

    name: str
    operands: tuple[str, ...]
    meaning: str
    structural: bool


# ---------------------------------------------------------------------------
# kind constants — the values are the historical wire strings; they are
# part of the persisted/compared surface (flow fingerprints, tests with
# listener spies) and must never change.
# ---------------------------------------------------------------------------
ADD_INPUT = "add_input"
ADD_OUTPUT = "add_output"
ADD_GATE = "add_gate"
REMOVE_GATE = "remove_gate"
REPLACE_FANIN = "replace_fanin"
SWAP_FANINS = "swap_fanins"
REPLACE_OUTPUT = "replace_output"
SET_GATE_TYPE = "set_gate_type"
SET_CELL = "set_cell"
SET_FANINS = "set_fanins"
RESTORE = "restore"
UNKNOWN = "unknown"

#: The registry, in documentation order (pin rewires first, structure,
#: rebinds, IO, then the two meta kinds).  ``tools.lint`` checks every
#: emission and every listener against exactly this table.
REGISTRY: dict[str, EventKind] = {
    kind.name: kind
    for kind in (
        EventKind(
            REPLACE_FANIN,
            ("pin", "old", "new"),
            "one pin rewired between nets",
            structural=True,
        ),
        EventKind(
            SWAP_FANINS,
            ("pin_a", "pin_b", "net_a", "net_b"),
            "non-inverting pin swap",
            structural=True,
        ),
        EventKind(
            SET_FANINS,
            ("gate", "old", "new"),
            "whole fanin list replaced",
            structural=True,
        ),
        EventKind(
            ADD_GATE,
            ("gate", "fanins"),
            "gate added (fanin nets may not exist yet)",
            structural=True,
        ),
        EventKind(
            REMOVE_GATE,
            ("gate", "fanins"),
            "fanout-free gate removed",
            structural=True,
        ),
        EventKind(
            SET_GATE_TYPE,
            ("gate", "fanins"),
            "logic type changed in place (cell unbound)",
            structural=False,
        ),
        EventKind(
            SET_CELL,
            ("gate", "fanins"),
            "library-cell rebind without rewiring",
            structural=False,
        ),
        EventKind(
            ADD_INPUT,
            ("net",),
            "primary input declared",
            structural=True,
        ),
        EventKind(
            ADD_OUTPUT,
            ("net",),
            "net declared a primary output",
            structural=False,
        ),
        EventKind(
            REPLACE_OUTPUT,
            ("old", "new"),
            "primary-output references retargeted",
            structural=False,
        ),
        EventKind(
            RESTORE,
            ("added", "removed", "changed", "io_changed"),
            "snapshot rollback delivered as an exact gate diff",
            structural=True,
        ),
        EventKind(
            UNKNOWN,
            (),
            "untracked mutation: all derived state is stale",
            structural=True,
        ),
    )
}

#: Every registered kind name, in registry (= documentation) order.
KINDS: tuple[str, ...] = tuple(REGISTRY)

#: ``Network`` methods that mutate the observed structure and emit the
#: like-named event (plus the raw ``_touch`` hook itself).  The purity
#: lint (``tools.lint``) forbids any call to these names from code
#: marked ``@projection_only`` — pricing a candidate must never mutate.
MUTATING_NETWORK_METHODS: frozenset[str] = frozenset({
    ADD_INPUT,
    ADD_OUTPUT,
    ADD_GATE,
    REMOVE_GATE,
    REPLACE_FANIN,
    SWAP_FANINS,
    REPLACE_OUTPUT,
    SET_GATE_TYPE,
    SET_CELL,
    SET_FANINS,
    "_touch",
    "notify_network_event",
})

#: Kinds that change the gate/net structure itself; engines that
#: flatten structure typically map these to "rebuild lazily".
STRUCTURAL_KINDS: frozenset[str] = frozenset(
    kind.name for kind in REGISTRY.values() if kind.structural
)


def is_registered(kind: str) -> bool:
    """True when *kind* is a registered event kind."""
    return kind in REGISTRY


def operands_of(kind: str) -> tuple[str, ...]:
    """Operand names of a registered kind (KeyError when unknown)."""
    return REGISTRY[kind].operands
