"""BLIF reader / writer.

SIS — the system the paper's prototype was built on — exchanges logic
through the Berkeley Logic Interchange Format.  The reader accepts the
combinational subset (``.model``, ``.inputs``, ``.outputs``, ``.names``
with arbitrary two-level covers, ``.latch`` is skipped with its output
re-declared as a pseudo primary input, matching the paper's treatment
of "sequential circuits ... with all sequential elements removed").
Arbitrary single-output covers are synthesized into OR-of-AND trees so
any BLIF file becomes a gate network; the writer emits one ``.names``
block per gate.
"""

from __future__ import annotations

import io
from typing import Iterable, TextIO

from .gatetype import GateType
from .netlist import Network, NetworkError


def _tokens(handle: TextIO) -> Iterable[list[str]]:
    """Yield logical BLIF lines as token lists, folding continuations."""
    pending = ""
    for raw in handle:
        line = raw.split("#", 1)[0].rstrip()
        if not line:
            continue
        if line.endswith("\\"):
            pending += line[:-1] + " "
            continue
        full = pending + line
        pending = ""
        parts = full.split()
        if parts:
            yield parts
    if pending.strip():
        yield pending.split()


class _NamesBlock:
    def __init__(self, signals: list[str]) -> None:
        self.inputs = signals[:-1]
        self.output = signals[-1]
        self.cubes: list[tuple[str, str]] = []  # (input pattern, output bit)


def parse_blif(text: str, name: str | None = None) -> Network:
    """Parse BLIF *text* into a :class:`Network`."""
    return read_blif(io.StringIO(text), name=name)


def read_blif(handle: TextIO, name: str | None = None) -> Network:
    """Read a combinational BLIF model from a file object."""
    model_name = name or "blif"
    inputs: list[str] = []
    outputs: list[str] = []
    blocks: list[_NamesBlock] = []
    latch_outputs: list[str] = []
    current: _NamesBlock | None = None
    for parts in _tokens(handle):
        key = parts[0]
        if key == ".model":
            if len(parts) > 1 and name is None:
                model_name = parts[1]
            current = None
        elif key == ".inputs":
            inputs.extend(parts[1:])
            current = None
        elif key == ".outputs":
            outputs.extend(parts[1:])
            current = None
        elif key == ".names":
            current = _NamesBlock(parts[1:])
            blocks.append(current)
        elif key == ".latch":
            # .latch input output [type clock] [init]
            latch_outputs.append(parts[2])
            current = None
        elif key == ".end":
            current = None
        elif key.startswith("."):
            current = None  # unsupported directive, skipped
        elif current is not None:
            if len(parts) == 2:
                current.cubes.append((parts[0], parts[1]))
            elif len(parts) == 1 and not current.inputs:
                current.cubes.append(("", parts[0]))
    network = Network(model_name)
    for pi in inputs:
        network.add_input(pi)
    for latch_out in latch_outputs:
        if latch_out not in network:
            network.add_input(latch_out)
    for block in blocks:
        _synthesize_block(network, block)
    for po in outputs:
        if po not in network:
            raise NetworkError(f"primary output {po!r} is never defined")
        network.add_output(po)
    return network


def _synthesize_block(network: Network, block: _NamesBlock) -> None:
    """Turn a two-level cover into gates driving ``block.output``."""
    out = block.output
    if not block.cubes:
        network.add_gate(out, GateType.CONST0)
        return
    out_bits = {bit for _, bit in block.cubes}
    if out_bits == {"0"}:
        # off-set cover: complement of the OR of the cubes
        product_nets = [
            _synthesize_cube(network, block.inputs, pattern, out)
            for pattern, _ in block.cubes
        ]
        _reduce(network, out, GateType.NOR, GateType.INV, product_nets)
        return
    cubes = [(pattern, bit) for pattern, bit in block.cubes if bit == "1"]
    if not block.inputs:
        value = cubes[0][1] if cubes else "0"
        network.add_gate(
            out, GateType.CONST1 if value == "1" else GateType.CONST0
        )
        return
    product_nets = [
        _synthesize_cube(network, block.inputs, pattern, out)
        for pattern, _ in cubes
    ]
    _reduce(network, out, GateType.OR, GateType.BUF, product_nets)


def _synthesize_cube(
    network: Network, inputs: list[str], pattern: str, prefix: str
) -> str:
    """Build the AND of the literals selected by *pattern*; return its net."""
    literals: list[str] = []
    for net, char in zip(inputs, pattern):
        if char == "1":
            literals.append(net)
        elif char == "0":
            inv = _inverted_net(network, net)
            literals.append(inv)
    if not literals:
        const = network.fresh_name(f"{prefix}_t1")
        network.add_gate(const, GateType.CONST1)
        return const
    if len(literals) == 1:
        return literals[0]
    cube = network.fresh_name(f"{prefix}_c")
    network.add_gate(cube, GateType.AND, literals)
    return cube


def _inverted_net(network: Network, net: str) -> str:
    for pin in network.fanout(net):
        gate = network.gate(pin.gate)
        if gate.gtype is GateType.INV:
            return gate.name
    inv = network.fresh_name(f"{net}_n")
    network.add_gate(inv, GateType.INV, [net])
    return inv


def _reduce(
    network: Network,
    out: str,
    gtype: GateType,
    single_type: GateType,
    nets: list[str],
) -> None:
    if len(nets) == 1:
        network.add_gate(out, single_type, nets)
    else:
        network.add_gate(out, gtype, nets)


_COVER_WRITERS = {
    GateType.AND: lambda n: [("1" * n, "1")],
    GateType.NAND: lambda n: [("1" * n, "0")],
    GateType.OR: lambda n: [
        ("-" * i + "1" + "-" * (n - i - 1), "1") for i in range(n)
    ],
    GateType.NOR: lambda n: [("0" * n, "1")],
    GateType.INV: lambda n: [("0", "1")],
    GateType.BUF: lambda n: [("1", "1")],
}


def _xor_cover(arity: int, odd: bool) -> list[tuple[str, str]]:
    rows = []
    for value in range(1 << arity):
        bits = format(value, f"0{arity}b")
        ones = bits.count("1")
        if (ones % 2 == 1) == odd:
            rows.append((bits, "1"))
    return rows


def write_blif(network: Network, handle: TextIO) -> None:
    """Write the network as combinational BLIF."""
    handle.write(f".model {network.name}\n")
    if network.inputs:
        handle.write(".inputs " + " ".join(network.inputs) + "\n")
    if network.outputs:
        handle.write(".outputs " + " ".join(network.outputs) + "\n")
    for name in network.topo_order():
        gate = network.gate(name)
        header = ".names " + " ".join([*gate.fanins, gate.name]) + "\n"
        handle.write(header)
        if gate.gtype is GateType.CONST1:
            handle.write("1\n")
        elif gate.gtype is GateType.CONST0:
            pass  # empty cover = constant 0
        elif gate.gtype in (GateType.XOR, GateType.XNOR):
            odd = gate.gtype is GateType.XOR
            for pattern, bit in _xor_cover(gate.arity(), odd):
                handle.write(f"{pattern} {bit}\n")
        else:
            for pattern, bit in _COVER_WRITERS[gate.gtype](gate.arity()):
                handle.write(f"{pattern} {bit}\n")
    handle.write(".end\n")


def blif_text(network: Network) -> str:
    """Return the BLIF serialization of *network* as a string."""
    buffer = io.StringIO()
    write_blif(network, buffer)
    return buffer.getvalue()
