"""ISCAS ``.bench`` reader / writer.

The ISCAS'85/'89 benchmark suites the paper evaluates on are
conventionally distributed in the ``.bench`` format::

    INPUT(G1)
    OUTPUT(G17)
    G10 = NAND(G1, G3)
    G17 = DFF(G10)

``DFF`` elements are removed per the paper ("sequential circuits are
treated as combinational ones with all sequential elements removed"):
each flip-flop output becomes a pseudo primary input and its data input
a pseudo primary output.
"""

from __future__ import annotations

import io
import re
from typing import TextIO

from .gatetype import GateType
from .netlist import Network, NetworkError

_GATE_TYPES = {
    "AND": GateType.AND,
    "OR": GateType.OR,
    "XOR": GateType.XOR,
    "NAND": GateType.NAND,
    "NOR": GateType.NOR,
    "XNOR": GateType.XNOR,
    "NOT": GateType.INV,
    "INV": GateType.INV,
    "BUF": GateType.BUF,
    "BUFF": GateType.BUF,
}

_ASSIGN = re.compile(
    r"^\s*([\w.\[\]$]+)\s*=\s*(\w+)\s*\(([^)]*)\)\s*$"
)
_IO = re.compile(r"^\s*(INPUT|OUTPUT)\s*\(\s*([\w.\[\]$]+)\s*\)\s*$")


def parse_bench(text: str, name: str = "bench") -> Network:
    """Parse ``.bench`` *text* into a :class:`Network`."""
    return read_bench(io.StringIO(text), name=name)


def read_bench(handle: TextIO, name: str = "bench") -> Network:
    """Read a ``.bench`` netlist, stripping sequential elements."""
    network = Network(name)
    outputs: list[str] = []
    assignments: list[tuple[str, str, list[str]]] = []
    for raw in handle:
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        io_match = _IO.match(line)
        if io_match:
            kind, net = io_match.groups()
            if kind == "INPUT":
                network.add_input(net)
            else:
                outputs.append(net)
            continue
        assign = _ASSIGN.match(line)
        if not assign:
            raise NetworkError(f"unparseable .bench line: {line!r}")
        target, func, arg_text = assign.groups()
        args = [arg.strip() for arg in arg_text.split(",") if arg.strip()]
        assignments.append((target, func.upper(), args))
    for target, func, args in assignments:
        if func in ("DFF", "DFFSR", "LATCH"):
            # flip-flop: output is a pseudo PI, data input a pseudo PO
            if target not in network:
                network.add_input(target)
            outputs.extend(args[:1])
            continue
        gtype = _GATE_TYPES.get(func)
        if gtype is None:
            raise NetworkError(f"unknown .bench gate function {func!r}")
        if gtype in (GateType.INV, GateType.BUF) and len(args) != 1:
            raise NetworkError(f"{func} takes one argument: {target}")
        network.add_gate(target, gtype, args)
    for net in outputs:
        if net not in network:
            raise NetworkError(f"output {net!r} is never defined")
        network.add_output(net)
    return network


_FUNC_NAMES = {
    GateType.AND: "AND",
    GateType.OR: "OR",
    GateType.XOR: "XOR",
    GateType.NAND: "NAND",
    GateType.NOR: "NOR",
    GateType.XNOR: "XNOR",
    GateType.INV: "NOT",
    GateType.BUF: "BUFF",
}


def write_bench(network: Network, handle: TextIO) -> None:
    """Write the network in ``.bench`` syntax (constants are expanded)."""
    handle.write(f"# {network.name}\n")
    for net in network.inputs:
        handle.write(f"INPUT({net})\n")
    for net in network.outputs:
        handle.write(f"OUTPUT({net})\n")
    const_helpers: dict[str, str] = {}
    for name in network.topo_order():
        gate = network.gate(name)
        if gate.gtype in (GateType.CONST0, GateType.CONST1):
            # .bench has no constants: emit x AND NOT x / x OR NOT x
            if not network.inputs:
                raise NetworkError(
                    "cannot express constants in .bench without inputs"
                )
            pi = network.inputs[0]
            inv = const_helpers.get("inv")
            if inv is None:
                inv = f"{name}_helper_inv"
                handle.write(f"{inv} = NOT({pi})\n")
                const_helpers["inv"] = inv
            func = "AND" if gate.gtype is GateType.CONST0 else "OR"
            handle.write(f"{name} = {func}({pi}, {inv})\n")
            continue
        func = _FUNC_NAMES[gate.gtype]
        handle.write(f"{name} = {func}({', '.join(gate.fanins)})\n")


def bench_text(network: Network) -> str:
    """Return the ``.bench`` serialization as a string."""
    buffer = io.StringIO()
    write_bench(network, buffer)
    return buffer.getvalue()
