"""Fluent construction helper for Boolean networks.

Circuit generators (``repro.suite``) and tests build networks through
this class; it hands out fresh names, folds trivial cases (one-input
AND becomes a BUF) and balances wide gates into trees when asked.
"""

from __future__ import annotations

from .gatetype import GateType
from .netlist import Network


class NetworkBuilder:
    """Incrementally build a :class:`Network` with auto-named gates."""

    def __init__(self, name: str = "top") -> None:
        self.network = Network(name)
        self._counter = 0

    # ------------------------------------------------------------------
    def input(self, name: str | None = None) -> str:
        """Add a primary input, auto-named ``i<N>`` when unnamed."""
        if name is None:
            name = self._fresh("i")
        return self.network.add_input(name)

    def inputs(self, count: int, prefix: str = "i") -> list[str]:
        """Add *count* primary inputs named ``<prefix><index>``."""
        return [
            self.network.add_input(f"{prefix}{index}")
            for index in range(count)
        ]

    def output(self, net: str) -> str:
        """Mark *net* as a primary output."""
        return self.network.add_output(net)

    # ------------------------------------------------------------------
    def gate(
        self, gtype: GateType, *fanins: str, name: str | None = None
    ) -> str:
        """Add a gate; trivial arities are folded to BUF/INV."""
        nets = list(fanins)
        if name is None:
            name = self._fresh(gtype.value)
        if gtype in (GateType.AND, GateType.OR) and len(nets) == 1:
            gtype = GateType.BUF
        if gtype in (GateType.NAND, GateType.NOR) and len(nets) == 1:
            gtype = GateType.INV
        if gtype is GateType.XOR and len(nets) == 1:
            gtype = GateType.BUF
        if gtype is GateType.XNOR and len(nets) == 1:
            gtype = GateType.INV
        self.network.add_gate(name, gtype, nets)
        return name

    def and_(self, *fanins: str, name: str | None = None) -> str:
        return self.gate(GateType.AND, *fanins, name=name)

    def or_(self, *fanins: str, name: str | None = None) -> str:
        return self.gate(GateType.OR, *fanins, name=name)

    def xor(self, *fanins: str, name: str | None = None) -> str:
        return self.gate(GateType.XOR, *fanins, name=name)

    def nand(self, *fanins: str, name: str | None = None) -> str:
        return self.gate(GateType.NAND, *fanins, name=name)

    def nor(self, *fanins: str, name: str | None = None) -> str:
        return self.gate(GateType.NOR, *fanins, name=name)

    def xnor(self, *fanins: str, name: str | None = None) -> str:
        return self.gate(GateType.XNOR, *fanins, name=name)

    def inv(self, fanin: str, name: str | None = None) -> str:
        return self.gate(GateType.INV, fanin, name=name)

    def buf(self, fanin: str, name: str | None = None) -> str:
        return self.gate(GateType.BUF, fanin, name=name)

    def const0(self, name: str | None = None) -> str:
        if name is None:
            name = self._fresh("zero")
        self.network.add_gate(name, GateType.CONST0, [])
        return name

    def const1(self, name: str | None = None) -> str:
        if name is None:
            name = self._fresh("one")
        self.network.add_gate(name, GateType.CONST1, [])
        return name

    # ------------------------------------------------------------------
    def tree(
        self,
        gtype: GateType,
        nets: list[str],
        fanin_limit: int = 2,
        name: str | None = None,
        style: str = "balanced",
    ) -> str:
        """Tree of *gtype* gates over *nets*.

        ``style="balanced"`` builds a minimum-depth tree;
        ``style="chain"`` builds a left-deep chain — chains over
        canonically ordered operands maximize shared prefixes, which
        structural hashing then merges into multi-fanout nodes (the way
        multi-level synthesis shares common subexpressions).  The final
        gate carries *name* when given.
        """
        if not nets:
            raise ValueError("tree needs at least one input net")
        if gtype in (GateType.NAND, GateType.NOR, GateType.XNOR):
            inner = {
                GateType.NAND: GateType.AND,
                GateType.NOR: GateType.OR,
                GateType.XNOR: GateType.XOR,
            }[gtype]
            wide = self.tree(inner, nets, fanin_limit, style=style)
            return self.inv(wide, name=name)
        if style == "chain":
            level = list(nets)
            while len(level) > 1:
                left = self.gate(gtype, level[0], level[1])
                level = [left] + level[2:]
            if name is None:
                return level[0]
            return self.buf(level[0], name=name)
        level = list(nets)
        while len(level) > fanin_limit:
            grouped: list[str] = []
            for start in range(0, len(level), fanin_limit):
                chunk = level[start:start + fanin_limit]
                if len(chunk) == 1:
                    grouped.append(chunk[0])
                else:
                    grouped.append(self.gate(gtype, *chunk))
            level = grouped
        if len(level) == 1:
            if name is None:
                return level[0]
            return self.buf(level[0], name=name)
        return self.gate(gtype, *level, name=name)

    def mux(self, select: str, when0: str, when1: str,
            name: str | None = None) -> str:
        """2:1 multiplexer: ``select ? when1 : when0``."""
        sel_n = self.inv(select)
        leg0 = self.and_(sel_n, when0)
        leg1 = self.and_(select, when1)
        return self.or_(leg0, leg1, name=name)

    def half_adder(self, a: str, b: str) -> tuple[str, str]:
        """Return (sum, carry)."""
        return self.xor(a, b), self.and_(a, b)

    def full_adder(self, a: str, b: str, carry_in: str) -> tuple[str, str]:
        """Return (sum, carry_out) built from two half adders."""
        s1, c1 = self.half_adder(a, b)
        s2, c2 = self.half_adder(s1, carry_in)
        return s2, self.or_(c1, c2)

    # ------------------------------------------------------------------
    def _fresh(self, prefix: str) -> str:
        while True:
            candidate = f"{prefix}{self._counter}"
            self._counter += 1
            if candidate not in self.network:
                return candidate

    def build(self) -> Network:
        """Return the constructed network."""
        return self.network
