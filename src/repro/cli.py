"""Command-line front end: ``rapids <command>``.

Commands:

* ``table1 [names...]``   — run the Section 6 flow and print Table 1
* ``bench <name>``        — one benchmark, verbose per-mode report
* ``symmetries <file>``   — extract supergates / swappable pins from a
  BLIF or .bench netlist and print the census
* ``list``                — registered benchmarks with paper reference
"""

from __future__ import annotations

import argparse
import sys

from .checkpoint import CHECKPOINT_EXIT_CODE, RunInterrupted
from .rapids.report import Table1Row, averages
from .suite.flow import FlowConfig, run_benchmark, run_suite
from .suite.registry import (
    PAPER_AVERAGES,
    REGISTRY,
    UnknownBenchmarkError,
    benchmark_names,
    synthetic_names,
)


def _cmd_list(_args: argparse.Namespace) -> int:
    print(f"{'name':<10}{'family':<12}{'paper gates':>12}{'init ns':>9}")
    for name in benchmark_names():
        spec = REGISTRY[name]
        print(
            f"{name:<10}{spec.family:<12}{spec.paper.gates:>12}"
            f"{spec.paper.init_ns:>9.1f}"
        )
    for name in synthetic_names():
        spec = REGISTRY[name]
        print(
            f"{name:<10}{spec.family:<12}{spec.paper.gates:>12}"
            f"{'--':>9}"
        )
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    config = FlowConfig(
        scale=args.scale,
        check_equivalence=args.verify,
        workers=args.workers,
        sim_backend=args.sim_backend,
        wl_passes=args.wl_passes,
        wl_batched=args.wl_batched,
        wl_timing_aware=args.wl_timing_aware,
        wl_slack_margin=args.wl_slack_margin,
        wl_class_swaps=args.wl_class_swaps,
        partition=args.partition,
        partition_max_gates=args.partition_max_gates,
        checkpoint=args.checkpoint,
        resume=args.resume,
        checkpoint_every=args.checkpoint_every,
    )
    names = args.names or benchmark_names()
    print(Table1Row.HEADER)
    rows = []

    def progress(outcome) -> None:
        rows.append(outcome.row)
        print(outcome.row.format())
        sys.stdout.flush()

    run_suite(names, config, progress=progress)
    avg = averages(rows)
    print(
        f"{'ave.':<10}{'':>7}{'':>7}"
        f"{avg['gsg_percent']:>7.1f}{avg['gs_percent']:>7.1f}"
        f"{avg['gsg_gs_percent']:>7.1f}{'':>22}"
        f"{avg['gs_area_percent']:>7.1f}{avg['gsg_gs_area_percent']:>8.1f}"
        f"{avg['coverage_percent']:>7.1f}"
    )
    print(
        "paper ave.        "
        f" gsg {PAPER_AVERAGES['gsg_percent']:.1f}"
        f"  GS {PAPER_AVERAGES['gs_percent']:.1f}"
        f"  gsg+GS {PAPER_AVERAGES['gsg_gs_percent']:.1f}"
        f"  areas {PAPER_AVERAGES['gs_area_percent']:.1f}/"
        f"{PAPER_AVERAGES['gsg_gs_area_percent']:.1f}"
        f"  cov {PAPER_AVERAGES['coverage_percent']:.1f}"
    )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    config = FlowConfig(
        scale=args.scale,
        check_equivalence=args.verify,
        workers=args.workers,
        sim_backend=args.sim_backend,
        wl_passes=args.wl_passes,
        wl_batched=args.wl_batched,
        wl_timing_aware=args.wl_timing_aware,
        wl_slack_margin=args.wl_slack_margin,
        wl_class_swaps=args.wl_class_swaps,
        partition=args.partition,
        partition_max_gates=args.partition_max_gates,
        checkpoint=args.checkpoint,
        resume=args.resume,
        checkpoint_every=args.checkpoint_every,
    )
    outcome = run_benchmark(args.name, config)
    print(f"benchmark {args.name} (scale {outcome.scale})")
    print(f"  gates {len(outcome.network)}  depth "
          f"{outcome.network.depth()}  hpwl {outcome.hpwl:.0f} um")
    print(f"  initial delay {outcome.initial_delay:.3f} ns  "
          f"area {outcome.initial_area:.0f} um^2")
    for key, value in sorted(outcome.stats.items()):
        print(f"  {key}: {value:.1f}")
    for mode, result in outcome.results.items():
        print(
            f"  {mode:7s} {result.optimize.initial_delay:.3f} -> "
            f"{result.optimize.final_delay:.3f} ns "
            f"({result.improvement_percent:+.1f}%), area "
            f"{result.area_delta_percent:+.1f}%, "
            f"{result.optimize.moves_applied} moves, "
            f"{result.runtime_seconds:.1f}s"
            + (
                f", equivalent={result.equivalent}"
                if result.equivalent is not None else ""
            )
        )
        if result.wirelength is not None:
            wl = result.wirelength
            guard = (
                f", slack-guarded (margin {wl.slack_margin:g} ns, "
                f"{wl.timing_rejected} rejected)"
                if wl.timing_aware else ""
            )
            klass = (
                f" + {wl.class_swaps_applied} class"
                if wl.class_swaps_applied else ""
            )
            print(
                f"          wirelength ({wl.mode}): "
                f"{wl.initial_hpwl:.0f} -> {wl.final_hpwl:.0f} um "
                f"({wl.improvement_percent:+.1f}%), "
                f"{wl.swaps_applied} swaps + {wl.cross_swaps_applied} "
                f"cross{klass} in {wl.passes} passes" + guard
            )
    return 0


def _cmd_symmetries(args: argparse.Namespace) -> int:
    from .network.bench_io import read_bench
    from .network.blif import read_blif
    from .symmetry.redundancy import find_easy_redundancies, redundancy_counts
    from .symmetry.supergate import extract_supergates
    from .symmetry.swap import count_swappable_pairs

    with open(args.file) as handle:
        if args.file.endswith(".bench"):
            network = read_bench(handle)
        else:
            network = read_blif(handle)
    sgn = extract_supergates(network)
    print(f"{network.name}: {len(network)} gates, "
          f"{len(sgn.supergates)} supergates")
    for key, value in sorted(sgn.stats().items()):
        print(f"  {key}: {value}")
    for key, value in count_swappable_pairs(sgn).items():
        print(f"  {key}: {value}")
    for key, value in redundancy_counts(
        find_easy_redundancies(network, sgn)
    ).items():
        print(f"  redundancy_{key}: {value}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``rapids`` console script."""
    parser = argparse.ArgumentParser(
        prog="rapids",
        description="RAPIDS (DAC 2000) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="registered benchmarks")
    p_list.set_defaults(func=_cmd_list)

    def _optimizer_knobs(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--workers", type=int, default=1, metavar="N",
            help="shard candidate-gain evaluation over N worker "
                 "processes; the optimization trajectory is bit-identical "
                 "for every N (default: 1, serial)",
        )
        p.add_argument(
            "--sim-backend", default="auto",
            choices=["auto", "bigint", "numpy"],
            help="simulation backend for equivalence sweeps; 'auto' "
                 "picks bigint for deep narrow logic and numpy for wide "
                 "shallow blocks from the compiled sweep shape "
                 "(default: auto)",
        )
        p.add_argument(
            "--wl-passes", type=int, default=1, metavar="N",
            help="append N Section-5 wirelength-rewiring passes after "
                 "timing optimization: symmetric signals are exchanged "
                 "to shorten estimated wires, placement untouched "
                 "(default: 1 — the timing-aware slack gate makes the "
                 "polish delay-safe; 0 skips it)",
        )
        p.add_argument(
            "--wl-batched", action=argparse.BooleanOptionalAction,
            default=True,
            help="score each wirelength pass's full candidate set as "
                 "one vectorized batch and commit a conflict-free "
                 "subset; --no-wl-batched runs the serial greedy "
                 "reference instead (default: batched)",
        )
        p.add_argument(
            "--wl-timing-aware", action=argparse.BooleanOptionalAction,
            default=True,
            help="gate every wirelength swap on its projected slack "
                 "neighborhood staying above the guard band; "
                 "--no-wl-timing-aware restores the HPWL-only "
                 "objective (default: timing-aware)",
        )
        p.add_argument(
            "--wl-slack-margin", type=float, default=0.0, metavar="NS",
            help="guard band in ns for the timing-aware wirelength "
                 "gate: 0.0 never degrades the re-timed delay, "
                 "negative values trade bounded delay for wire, "
                 "positive values keep a safety band (default: 0.0)",
        )
        p.add_argument(
            "--wl-class-swaps", action=argparse.BooleanOptionalAction,
            default=False,
            help="admit coloring-derived cross-supergate swap "
                 "candidates into the batched wirelength polish: pins "
                 "reading functionally identical nets (same cone "
                 "color) are exchanged when profitable, each candidate "
                 "verified by simulation before entering a batch "
                 "(default: off — trajectories unchanged)",
        )
        p.add_argument(
            "--partition", action=argparse.BooleanOptionalAction,
            default=False,
            help="run the wirelength polish region-bounded: FM-carve "
                 "the placed netlist into regions with frozen boundary "
                 "nets, select per region (concurrently with "
                 "--workers), commit through the serial conflict-free "
                 "committer — the 1e5+ gate path (default: off)",
        )
        p.add_argument(
            "--partition-max-gates", type=int, default=2500, metavar="N",
            help="region size cap for the partitioned carve; large "
                 "enough for one region reproduces the unpartitioned "
                 "trajectory bit-for-bit (default: 2500)",
        )
        p.add_argument(
            "--checkpoint", default=None, metavar="PATH",
            help="save resume state to PATH.<mode> at flow boundaries "
                 "and on SIGTERM; an interrupted run exits with status "
                 "75 (EX_TEMPFAIL) after a clean save (default: off)",
        )
        p.add_argument(
            "--resume", action="store_true",
            help="reload --checkpoint files and continue interrupted "
                 "runs from the saved cursor; the finished run is "
                 "bit-identical to an uninterrupted one (missing "
                 "checkpoints just run fresh)",
        )
        p.add_argument(
            "--checkpoint-every", type=int, default=1, metavar="N",
            help="save only every N-th flow boundary (SIGTERM always "
                 "saves at the next boundary; default: 1)",
        )

    p_table = sub.add_parser("table1", help="reproduce Table 1")
    p_table.add_argument("names", nargs="*", help="subset of benchmarks")
    p_table.add_argument("--scale", type=float, default=None)
    p_table.add_argument("--verify", action="store_true",
                         help="check functional equivalence per mode")
    _optimizer_knobs(p_table)
    p_table.set_defaults(func=_cmd_table1)

    p_bench = sub.add_parser("bench", help="one benchmark, verbose")
    p_bench.add_argument("name")
    p_bench.add_argument("--scale", type=float, default=None)
    p_bench.add_argument("--verify", action="store_true")
    _optimizer_knobs(p_bench)
    p_bench.set_defaults(func=_cmd_bench)

    p_sym = sub.add_parser(
        "symmetries", help="supergate census of a BLIF/.bench file"
    )
    p_sym.add_argument("file")
    p_sym.set_defaults(func=_cmd_symmetries)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except UnknownBenchmarkError as exc:
        print(f"rapids: {exc.args[0]}", file=sys.stderr)
        return 2
    except RunInterrupted as exc:
        print(f"rapids: {exc}", file=sys.stderr)
        return CHECKPOINT_EXIT_CODE


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
