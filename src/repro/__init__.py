"""RAPIDS reproduction: fast post-placement rewiring via functional symmetries.

Reimplementation of Chang, Cheng, Suaris and Marek-Sadowska, *Fast
Post-placement Rewiring Using Easily Detectable Functional Symmetries*
(DAC 2000), together with every substrate the paper depends on: Boolean
networks, logic simulation and BDDs, ATPG, a standard-cell library, a
synthesis/mapping pipeline, a min-cut placer, star-model/Elmore timing
analysis, Coudert-style gate sizing, and the benchmark suite flow that
regenerates Table 1.

Quick start::

    from repro import NetworkBuilder, extract_supergates, enumerate_swaps

    b = NetworkBuilder()
    a, c, x = b.inputs(3)
    f = b.and_(b.nor(a, c), x, name="f")
    b.output(f)
    network = b.build()
    sgn = extract_supergates(network)
    for sg in sgn.nontrivial():
        for swap in enumerate_swaps(sg):
            print(swap.describe(network))
"""

from .network import (
    Gate,
    GateType,
    Network,
    NetworkBuilder,
    NetworkError,
    Pin,
    check_network,
    parse_bench,
    parse_blif,
)
from .library.cells import Cell, Library, default_library
from .symmetry import (
    PinSwap,
    SgClass,
    Supergate,
    SupergateNetwork,
    apply_cross_swap,
    apply_swap,
    enumerate_swaps,
    extract_supergates,
    find_cross_swaps,
    find_easy_redundancies,
)
from .place import Placement, place, total_hpwl
from .timing import TimingEngine
from .synth import map_network, script_rugged
from .rapids import RapidsResult, run_rapids
from .sizing import OptimizeResult, optimize
from .suite import FlowConfig, benchmark_names, build_benchmark, run_benchmark
from .verify import assert_equivalent, networks_equivalent

__version__ = "1.0.0"

__all__ = [
    "Cell",
    "FlowConfig",
    "Gate",
    "GateType",
    "Library",
    "Network",
    "NetworkBuilder",
    "NetworkError",
    "OptimizeResult",
    "Pin",
    "PinSwap",
    "Placement",
    "RapidsResult",
    "SgClass",
    "Supergate",
    "SupergateNetwork",
    "TimingEngine",
    "__version__",
    "apply_cross_swap",
    "apply_swap",
    "assert_equivalent",
    "benchmark_names",
    "build_benchmark",
    "check_network",
    "default_library",
    "enumerate_swaps",
    "extract_supergates",
    "find_cross_swaps",
    "find_easy_redundancies",
    "map_network",
    "networks_equivalent",
    "optimize",
    "parse_bench",
    "parse_blif",
    "place",
    "run_benchmark",
    "run_rapids",
    "script_rugged",
    "total_hpwl",
]
