"""Machine-checked contract markers consumed by ``python -m tools.lint``.

The repository's headline guarantee — every incremental, batched, or
parallel path is bit-identical to its serial reference — rests on a
handful of invariants that used to live only in docstrings.  This
module gives those invariants *names in the code* so the static
analysis suite in ``tools/lint`` can enforce them (the four rule
families are documented in ``docs/architecture.md``):

* :func:`projection_only` — the decorated callable prices candidates
  purely from cached analysis state: no reachable call (through a
  module-local call graph) may mutate the :class:`~repro.network.
  netlist.Network` or emit mutation events.
* :func:`worker_entry` — the decorated function is an
  :class:`~repro.parallel.pool.EvalPool` worker entry point: code
  reachable from it must not write module-level mutable globals,
  except at sites explicitly waived with a ``# lint: allow(
  worker-global)`` pragma (each such waiver is a known obstacle for
  the session-scoping work in ROADMAP item 3).
* modules that declare ``__deterministic__ = True`` opt into the
  determinism lint: unsorted ``set`` iteration whose results feed
  float accumulation, ``min``/``max``/``sorted`` tie-breaking, or
  first-wins selection is flagged (the PR-2 ``PYTHONHASHSEED`` bug
  class).

All markers are runtime no-ops: they only tag the object (or module)
for the linter and for readers.
"""

from __future__ import annotations

from typing import Callable, TypeVar

_F = TypeVar("_F", bound=Callable)


def projection_only(func: _F) -> _F:
    """Declare that *func* prices candidates without mutating anything.

    The contract (see ``docs/architecture.md``, "The projection-only
    pricing contract"): the function — and everything it reaches
    through module-local calls — computes what-if results purely from
    cached engine state.  It never calls a mutating ``Network`` method,
    never emits events, and therefore never invalidates a subscribed
    engine.  ``python -m tools.lint`` verifies this statically;
    listener-spy tests verify it dynamically.
    """
    func.__projection_only__ = True
    return func


def worker_entry(func: _F) -> _F:
    """Declare that *func* runs inside an :class:`EvalPool` worker.

    Code reachable from a worker entry point must not write
    module-level mutable globals: worker processes are shared across
    batches (and, once ROADMAP item 3 lands, across sessions), so
    hidden module state is either a correctness hazard or a
    session-scoping obstacle.  ``python -m tools.lint`` walks the
    cross-module call graph from every marked entry point and flags
    each write; intentional caches carry a ``# lint: allow(
    worker-global)`` waiver at the write site.
    """
    func.__worker_entry__ = True
    return func


def fault_hook(func: _F) -> _F:
    """Declare that *func* is a fault-injection hook
    (:mod:`repro.parallel.faults`).

    Fault hooks are deterministic, env-gated shims: they read the
    ``REPRO_FAULT_PLAN`` environment payload, key every decision on an
    explicit submission index, and do nothing when no plan is set.
    The worker-global rule exempts their bodies — the parsed-plan
    cache they keep is keyed by the immutable env payload, so it can
    never leak state between batches or sessions — without a waiver,
    keeping the waiver inventory an honest work list.
    """
    func.__fault_hook__ = True
    return func
