"""Standard-cell library model.

The paper maps onto "a commercial 0.35um standard cell library
consisting of INV, BUF, NAND, NOR, XOR, and XNOR with number of inputs
ranging from 2 to 4.  Each type has 4 different implementations."  This
module models such a library parametrically: every cell has a logic
function, pin capacitance, area, and a load-dependent pin-to-pin delay
``d = intrinsic + R_drive * C_load`` with separate rise and fall
parameters.  Interconnect constants follow the paper: 2 pF/cm and
2.4 kOhm/cm.

Units: time ns, capacitance pF, resistance kOhm (so R*C is ns),
distance um, area um^2.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..network.gatetype import GateType

#: Paper Section 6: unit wire capacitance, 2 pF/cm = 2e-4 pF/um.
UNIT_WIRE_CAP_PER_UM = 2.0e-4
#: Paper Section 6: unit wire resistance, 2.4 kOhm/cm = 2.4e-4 kOhm/um.
UNIT_WIRE_RES_PER_UM = 2.4e-4
#: Standard-cell row height used by the placer (um).
ROW_HEIGHT_UM = 13.0


@dataclass(frozen=True)
class Cell:
    """One library cell (a function at one drive strength).

    ``rise``/``fall`` parameters describe the pin-to-pin delay of any
    input to the output: ``delay = intrinsic + resistance * load``.
    """

    name: str
    function: GateType
    arity: int
    size: int
    area: float
    input_cap: float
    rise_intrinsic: float
    rise_resistance: float
    fall_intrinsic: float
    fall_resistance: float

    @property
    def width(self) -> float:
        """Footprint width in a standard-cell row (um)."""
        return self.area / ROW_HEIGHT_UM

    def delay(self, load: float, transition: str) -> float:
        """Pin-to-pin delay (ns) driving *load* pF for "rise"/"fall"."""
        if transition == "rise":
            return self.rise_intrinsic + self.rise_resistance * load
        return self.fall_intrinsic + self.fall_resistance * load

    def worst_delay(self, load: float) -> float:
        """Worse of the rise/fall delays for *load*."""
        return max(self.delay(load, "rise"), self.delay(load, "fall"))


class Library:
    """A collection of cells indexed by name and by (function, arity)."""

    def __init__(self, name: str, cells: list[Cell]) -> None:
        self.name = name
        self.cells: dict[str, Cell] = {}
        self._by_signature: dict[tuple[GateType, int], list[Cell]] = {}
        for cell in cells:
            if cell.name in self.cells:
                raise ValueError(f"duplicate cell {cell.name!r}")
            self.cells[cell.name] = cell
            group = self._by_signature.setdefault(
                (cell.function, cell.arity), []
            )
            group.append(cell)
        for group in self._by_signature.values():
            group.sort(key=lambda cell: cell.size)

    def cell(self, name: str) -> Cell:
        """Look up a cell by name."""
        try:
            return self.cells[name]
        except KeyError:
            raise KeyError(f"no cell {name!r} in library {self.name}") from None

    def implementations(self, function: GateType, arity: int) -> list[Cell]:
        """All drive strengths of a function/arity, smallest first."""
        return list(self._by_signature.get((function, arity), []))

    def sizes_of(self, cell: Cell) -> list[Cell]:
        """Alternative implementations of the same function and arity."""
        return self.implementations(cell.function, cell.arity)

    def has(self, function: GateType, arity: int) -> bool:
        """True when a cell with this signature exists."""
        return (function, arity) in self._by_signature

    def default_cell(self, function: GateType, arity: int) -> Cell:
        """The mid-strength implementation the mapper binds initially."""
        group = self.implementations(function, arity)
        if not group:
            raise KeyError(
                f"library {self.name} has no {function.name}{arity} cell"
            )
        return group[min(1, len(group) - 1)]

    def functions(self) -> set[tuple[GateType, int]]:
        """All (function, arity) signatures in the library."""
        return set(self._by_signature.keys())

    def max_arity(self, function: GateType) -> int:
        """Largest arity available for *function* (0 when absent)."""
        return max(
            (ar for fn, ar in self._by_signature if fn is function),
            default=0,
        )


def _scaled(
    name: str,
    function: GateType,
    arity: int,
    base_area: float,
    base_cap: float,
    base_rise_int: float,
    base_rise_res: float,
    base_fall_int: float,
    base_fall_res: float,
) -> list[Cell]:
    """Build the four drive strengths (X1, X2, X4, X8) of one function.

    Doubling the drive roughly halves the output resistance, scales the
    input capacitance and area up (sub-linearly for area, as the
    diffusion is shared) and shaves a little intrinsic delay.
    """
    cells = []
    for size in (1, 2, 4, 8):
        scale = float(size)
        # transistor widths scale with drive: input capacitance grows
        # almost linearly (R * Cin roughly constant — logical effort),
        # area slightly sub-linearly (shared diffusion/wells)
        cells.append(
            Cell(
                name=f"{name}_X{size}",
                function=function,
                arity=arity,
                size=size,
                area=base_area * (0.35 + 0.65 * scale),
                input_cap=base_cap * (0.15 + 0.85 * scale),
                rise_intrinsic=base_rise_int * (1.0 - 0.04 * (size - 1)),
                rise_resistance=base_rise_res / scale,
                fall_intrinsic=base_fall_int * (1.0 - 0.04 * (size - 1)),
                fall_resistance=base_fall_res / scale,
            )
        )
    return cells


def default_library() -> Library:
    """The repository's stand-in for the paper's 0.35 um library.

    Same cell set as the paper (INV, BUF, NAND/NOR 2-4, XOR/XNOR 2),
    four implementations per type.  Numbers are representative of a
    0.35 um process: X1 inverter input cap of 8 fF, a few kOhm of drive
    resistance, intrinsic delays below 150 ps.
    """
    cells: list[Cell] = []
    cells += _scaled("INV", GateType.INV, 1, 90.0, 0.008,
                     0.045, 2.4, 0.040, 2.0)
    cells += _scaled("BUF", GateType.BUF, 1, 130.0, 0.009,
                     0.090, 2.2, 0.085, 1.9)
    cells += _scaled("NAND2", GateType.NAND, 2, 120.0, 0.010,
                     0.060, 3.0, 0.050, 2.3)
    cells += _scaled("NAND3", GateType.NAND, 3, 160.0, 0.011,
                     0.075, 3.5, 0.062, 2.7)
    cells += _scaled("NAND4", GateType.NAND, 4, 205.0, 0.012,
                     0.092, 4.1, 0.075, 3.2)
    cells += _scaled("NOR2", GateType.NOR, 2, 125.0, 0.010,
                     0.066, 3.3, 0.048, 2.2)
    cells += _scaled("NOR3", GateType.NOR, 3, 170.0, 0.012,
                     0.085, 4.0, 0.058, 2.5)
    cells += _scaled("NOR4", GateType.NOR, 4, 220.0, 0.013,
                     0.105, 4.7, 0.068, 2.9)
    cells += _scaled("XOR2", GateType.XOR, 2, 230.0, 0.014,
                     0.120, 3.8, 0.110, 3.3)
    cells += _scaled("XNOR2", GateType.XNOR, 2, 235.0, 0.014,
                     0.125, 3.9, 0.112, 3.4)
    return Library("repro035", cells)


def wire_capacitance(length_um: float) -> float:
    """Capacitance (pF) of a wire segment of the given length."""
    return UNIT_WIRE_CAP_PER_UM * length_um


def wire_resistance(length_um: float) -> float:
    """Resistance (kOhm) of a wire segment of the given length."""
    return UNIT_WIRE_RES_PER_UM * length_um
