"""Standard-cell library substrate (the paper's 0.35 um library)."""

from .cells import (
    Cell,
    Library,
    ROW_HEIGHT_UM,
    UNIT_WIRE_CAP_PER_UM,
    UNIT_WIRE_RES_PER_UM,
    default_library,
    wire_capacitance,
    wire_resistance,
)

__all__ = [
    "Cell",
    "Library",
    "ROW_HEIGHT_UM",
    "UNIT_WIRE_CAP_PER_UM",
    "UNIT_WIRE_RES_PER_UM",
    "default_library",
    "wire_capacitance",
    "wire_resistance",
]
