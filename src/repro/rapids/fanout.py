"""Fanout optimization by buffer insertion (the paper's future work).

Section 6 closes with: "the SIS mapper often generates very large
fanout nets (more than 100 sinks) ... In the future, fanout
optimization should also be included into our formulation to explore
the maximum synergy."  This module provides that extension: sinks of a
heavily loaded net are clustered geometrically, each cluster is handed
to a buffer placed at the cluster's centroid, and the change is kept
only when the placed-design critical path actually improves.

Like rewiring, buffering never moves an existing cell — buffers are the
only additions, keeping the paper's minimum-perturbation discipline.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..library.cells import Library
from ..network.gatetype import GateType
from ..network.netlist import Network, Pin
from ..place.placement import Placement
from ..timing.sta import TimingEngine


@dataclass
class FanoutResult:
    """Outcome of a buffering pass."""

    initial_delay: float
    final_delay: float
    buffers_added: int
    nets_buffered: int

    @property
    def improvement_percent(self) -> float:
        if self.initial_delay <= 0:
            return 0.0
        return 100.0 * (
            self.initial_delay - self.final_delay
        ) / self.initial_delay


def heavy_nets(
    network: Network, min_fanout: int = 8
) -> list[tuple[str, int]]:
    """Nets at or above the fanout threshold, heaviest first."""
    loaded = [
        (net, network.fanout_degree(net))
        for net in network.nets()
        if network.fanout_degree(net) >= min_fanout
    ]
    loaded.sort(key=lambda item: -item[1])
    return loaded


def _cluster_sinks(
    pins: list[Pin],
    locations: dict[Pin, tuple[float, float]],
    cluster_size: int,
) -> list[list[Pin]]:
    """Greedy geometric clustering: sort by (x, y), chunk, refine.

    A simple space-filling order (x-major) keeps clusters compact
    enough for buffer placement; exact k-means is unnecessary at this
    granularity.
    """
    ordered = sorted(
        pins, key=lambda pin: (locations[pin][0], locations[pin][1])
    )
    return [
        ordered[start:start + cluster_size]
        for start in range(0, len(ordered), cluster_size)
    ]


def buffer_net(
    network: Network,
    placement: Placement,
    library: Library,
    net: str,
    cluster_size: int = 6,
) -> int:
    """Split *net*'s sinks across buffers; returns buffers added.

    Primary-output references stay on the original net (pads are
    driven directly); only gate input pins are re-homed.  Each buffer
    adopts its cluster's centroid as location.
    """
    pins = list(network.fanout(net))
    if len(pins) <= cluster_size:
        return 0
    locations = {pin: placement.locations[pin.gate] for pin in pins}
    clusters = _cluster_sinks(pins, locations, cluster_size)
    if len(clusters) < 2:
        return 0
    buffer_cells = library.implementations(GateType.BUF, 1)
    cell = buffer_cells[min(2, len(buffer_cells) - 1)]
    added = 0
    for cluster in clusters:
        name = network.fresh_name(f"{net}_buf")
        network.add_gate(name, GateType.BUF, [net], cell=cell.name)
        x = sum(locations[pin][0] for pin in cluster) / len(cluster)
        y = sum(locations[pin][1] for pin in cluster) / len(cluster)
        placement.set_location(name, x, y)
        for pin in cluster:
            network.replace_fanin(pin, name)
        added += 1
    return added


def optimize_fanout(
    network: Network,
    placement: Placement,
    library: Library,
    min_fanout: int = 8,
    cluster_size: int = 6,
    max_nets: int = 32,
) -> FanoutResult:
    """Buffer heavy nets one at a time, keeping only real improvements.

    Each candidate net is buffered on a trial copy; the buffering is
    committed when the full-STA critical path improves.  Conservative
    but safe — matching the optimizer discipline used everywhere else
    in this reproduction.
    """
    engine = TimingEngine(network, placement, library)
    engine.analyze()
    initial = engine.max_delay
    best = initial
    buffers = 0
    nets_done = 0
    for net, _degree in heavy_nets(network, min_fanout)[:max_nets]:
        trial_net = network.copy()
        trial_place = placement.copy()
        added = buffer_net(
            trial_net, trial_place, library, net, cluster_size
        )
        if not added:
            continue
        trial_engine = TimingEngine(trial_net, trial_place, library)
        trial_engine.analyze()
        if trial_engine.max_delay < best - 1e-9:
            best = trial_engine.max_delay
            buffers += added
            nets_done += 1
            _adopt(network, trial_net)
            placement.locations = dict(trial_place.locations)
    return FanoutResult(
        initial_delay=initial,
        final_delay=best,
        buffers_added=buffers,
        nets_buffered=nets_done,
    )


def _adopt(network: Network, trial: Network) -> None:
    """Copy trial structure into the live network object."""
    network.inputs = list(trial.inputs)
    network._input_set = set(trial._input_set)
    network.outputs = list(trial.outputs)
    network._gates = {g.name: g for g in trial.copy().gates()}
    network._touch()
