"""Wirelength-driven rewiring (Section 5, optimization use (1)).

"If two signals a and b come from geometrically fixed locations and all
gates have been placed, swapping of a and b can clearly reduce the wire
length" — this module does exactly that: greedy non-inverting leaf
swaps (and optionally cross-supergate fanin-group swaps) accepted
whenever they shorten the estimated wiring, with the placement frozen.

Useful on its own for congestion relief, and as the simplest
demonstration that symmetry-based rewiring needs no timing machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..network.netlist import Network
from ..place.placement import Placement, net_hpwl, total_hpwl
from ..symmetry.supergate import extract_supergates
from ..symmetry.swap import apply_swap, enumerate_swaps


@dataclass
class WirelengthResult:
    """Outcome of a wirelength-rewiring run."""

    initial_hpwl: float
    final_hpwl: float
    swaps_applied: int
    passes: int

    @property
    def improvement_percent(self) -> float:
        if self.initial_hpwl <= 0:
            return 0.0
        return 100.0 * (
            self.initial_hpwl - self.final_hpwl
        ) / self.initial_hpwl


def swap_hpwl_delta(
    network: Network, placement: Placement, swap
) -> float:
    """Wirelength change (negative = shorter) of a candidate swap."""
    net_a = network.fanin_net(swap.pin_a)
    net_b = network.fanin_net(swap.pin_b)
    if net_a == net_b:
        return 0.0
    before = net_hpwl(network, placement, net_a) + net_hpwl(
        network, placement, net_b
    )
    network.swap_fanins(swap.pin_a, swap.pin_b)
    after = net_hpwl(network, placement, net_a) + net_hpwl(
        network, placement, net_b
    )
    network.swap_fanins(swap.pin_a, swap.pin_b)
    return after - before


def reduce_wirelength(
    network: Network,
    placement: Placement,
    max_passes: int = 4,
    min_gain: float = 1e-9,
) -> WirelengthResult:
    """Greedy non-inverting swap passes until no net shortens.

    Only non-inverting swaps are used (an inverting swap adds cells,
    which is never justified by wirelength alone).  Supergates are
    re-extracted between passes since leaf swaps preserve the
    partition but keep the bookkeeping honest after any change.
    """
    initial = total_hpwl(network, placement)
    applied = 0
    passes = 0
    for _ in range(max_passes):
        passes += 1
        improved = 0
        sgn = extract_supergates(network)
        for sg in sgn.nontrivial():
            for swap in enumerate_swaps(
                sg, leaves_only=True, include_inverting=False
            ):
                delta = swap_hpwl_delta(network, placement, swap)
                if delta < -min_gain:
                    apply_swap(network, swap)
                    improved += 1
        applied += improved
        if not improved:
            break
    return WirelengthResult(
        initial_hpwl=initial,
        final_hpwl=total_hpwl(network, placement),
        swaps_applied=applied,
        passes=passes,
    )
