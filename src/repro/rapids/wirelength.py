"""Wirelength-driven rewiring (Section 5, optimization use (1)).

"If two signals a and b come from geometrically fixed locations and all
gates have been placed, swapping of a and b can clearly reduce the wire
length" — this module does exactly that: symmetric non-inverting leaf
swaps (and inverter-free cross-supergate fanin-group exchanges)
accepted whenever they shorten the estimated wiring, with the
placement frozen.

Two execution paths share one candidate-pricing contract (candidates
are **never** priced by mutating the network — pricing fires zero
events into subscribed engines):

* **batched** (the default): every pass enumerates the full candidate
  set once — leaf swaps of every non-trivial supergate plus pure
  cross swaps — scores it as one vectorized batch against a
  :class:`~repro.place.hpwl.WirelengthEngine`, and commits a maximal
  conflict-free subset (no two accepted moves sharing a net, so the
  priced deltas are exactly additive).  Scoring-and-committing repeats
  within the pass until no candidate improves: non-inverting leaf
  swaps preserve the supergate partition, so the pin-pair set stays
  valid and only the driving nets need re-reading.  Supergates are
  refreshed *incrementally* between passes through the PR-1
  :class:`~repro.rapids.engine.SupergateCache`.
* **greedy** (the reference): the historical interpreted trajectory —
  supergates re-extracted per pass, candidates priced and applied one
  at a time in enumeration order.  Deltas are bit-identical to the
  old trial-apply-and-revert implementation (pure extrema selection),
  minus the two mutation events it fired per candidate.

The batched path must end at a total HPWL no worse than greedy's on
the quick set (``benchmarks/bench_wirelength.py`` asserts it) and is
function-preserving by construction (every accepted move is a legal
symmetry application; the property tests sweep random networks ×
random placements through ``networks_equivalent``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..network.netlist import Network, Pin
from ..place.hpwl import WirelengthEngine
from ..place.placement import Placement, net_terminals, total_hpwl
from ..symmetry.cross import (
    CrossSwap,
    apply_cross_swap,
    cross_swap_bindings,
    find_cross_swaps,
)
from ..symmetry.supergate import extract_supergates
from ..symmetry.swap import apply_swap, enumerate_swaps


@dataclass
class WirelengthResult:
    """Outcome of a wirelength-rewiring run."""

    initial_hpwl: float
    final_hpwl: float
    swaps_applied: int
    passes: int
    mode: str = "greedy"
    cross_swaps_applied: int = 0
    candidates_scored: int = 0

    @property
    def improvement_percent(self) -> float:
        if self.initial_hpwl <= 0:
            return 0.0
        return 100.0 * (
            self.initial_hpwl - self.final_hpwl
        ) / self.initial_hpwl


def _hpwl_of(terminals: list[tuple[float, float]]) -> float:
    if len(terminals) < 2:
        return 0.0
    xs = [t[0] for t in terminals]
    ys = [t[1] for t in terminals]
    return (max(xs) - min(xs)) + (max(ys) - min(ys))


def _exchanged(
    terminals: list[tuple[float, float]],
    removed: tuple[float, float],
    added: tuple[float, float],
) -> list[tuple[float, float]]:
    edited = list(terminals)
    edited.remove(removed)
    edited.append(added)
    return edited


def swap_hpwl_delta(
    network: Network, placement: Placement, swap
) -> float:
    """Wirelength change (negative = shorter) of a candidate swap.

    Footprint-only: the affected nets' terminal multisets are edited
    arithmetically, so pricing never mutates the network — no version
    bump, no mutation events into subscribed engines.  The returned
    value is bit-identical to the historical trial-apply-and-revert
    computation (extrema of the same multisets).
    """
    net_a = network.fanin_net(swap.pin_a)
    net_b = network.fanin_net(swap.pin_b)
    if net_a == net_b:
        return 0.0
    loc_a = placement.locations[swap.pin_a.gate]
    loc_b = placement.locations[swap.pin_b.gate]
    terms_a = net_terminals(network, placement, net_a)
    terms_b = net_terminals(network, placement, net_b)
    before = _hpwl_of(terms_a) + _hpwl_of(terms_b)
    after = _hpwl_of(_exchanged(terms_a, loc_a, loc_b)) + _hpwl_of(
        _exchanged(terms_b, loc_b, loc_a)
    )
    return after - before


def reduce_wirelength(
    network: Network,
    placement: Placement,
    max_passes: int = 4,
    min_gain: float = 1e-9,
    batched: bool = True,
    include_cross: bool = True,
    engine: WirelengthEngine | None = None,
) -> WirelengthResult:
    """Shorten estimated wiring by symmetry-based rewiring.

    Only non-inverting swaps and inverter-free cross exchanges are
    used (a move that adds cells is never justified by wirelength
    alone), so the placement is untouched and the gate count constant.
    *batched* selects the vectorized conflict-free path (see module
    docstring); ``batched=False`` runs the serial greedy reference.
    *engine* lets callers reuse a prebuilt
    :class:`~repro.place.hpwl.WirelengthEngine` across runs.
    """
    if batched:
        return _reduce_batched(
            network, placement, max_passes, min_gain, include_cross, engine
        )
    return _reduce_greedy(network, placement, max_passes, min_gain)


# ----------------------------------------------------------------------
# greedy reference path (the historical trajectory)
# ----------------------------------------------------------------------
def _reduce_greedy(
    network: Network,
    placement: Placement,
    max_passes: int,
    min_gain: float,
) -> WirelengthResult:
    initial = total_hpwl(network, placement)
    applied = 0
    passes = 0
    scored = 0
    for _ in range(max_passes):
        passes += 1
        improved = 0
        sgn = extract_supergates(network)
        for sg in sgn.nontrivial():
            for swap in enumerate_swaps(
                sg, leaves_only=True, include_inverting=False,
                network=network,
            ):
                delta = swap_hpwl_delta(network, placement, swap)
                scored += 1
                if delta < -min_gain:
                    apply_swap(network, swap)
                    improved += 1
        applied += improved
        if not improved:
            break
    return WirelengthResult(
        initial_hpwl=initial,
        final_hpwl=total_hpwl(network, placement),
        swaps_applied=applied,
        passes=passes,
        mode="greedy",
        candidates_scored=scored,
    )


# ----------------------------------------------------------------------
# batched engine path
# ----------------------------------------------------------------------
def _reduce_batched(
    network: Network,
    placement: Placement,
    max_passes: int,
    min_gain: float,
    include_cross: bool,
    engine: WirelengthEngine | None,
) -> WirelengthResult:
    from .engine import SupergateCache

    placement.ensure_covered(network)
    if engine is None:
        engine = WirelengthEngine(network, placement)
    cache = SupergateCache(network)
    initial = engine.total_hpwl()
    leaf_applied = 0
    cross_applied = 0
    passes = 0
    scored_before = engine.candidates_scored
    for _ in range(max_passes):
        passes += 1
        sgn = cache.get()
        pairs = _leaf_pairs(sgn, network)
        crosses = (
            _pure_crosses(sgn) if include_cross else []
        )
        pass_applied = 0
        first_iteration = True
        while True:
            leaves, crossings = _commit_batch(
                network, engine, sgn, pairs,
                crosses if first_iteration else [], min_gain,
            )
            first_iteration = False
            leaf_applied += leaves
            cross_applied += crossings
            pass_applied += leaves + crossings
            if leaves + crossings == 0:
                break
        if pass_applied == 0:
            break
    return WirelengthResult(
        initial_hpwl=initial,
        final_hpwl=engine.total_hpwl(),
        swaps_applied=leaf_applied,
        passes=passes,
        mode="batched",
        cross_swaps_applied=cross_applied,
        candidates_scored=engine.candidates_scored - scored_before,
    )


def _leaf_pairs(sgn, network: Network) -> list[tuple[str, Pin, Pin]]:
    """Deduplicated, deterministically ordered leaf-swap candidates.

    Supergate iteration follows the partition's insertion order and
    pin pairing follows leaf-extraction order — no set/dict-hash
    iteration anywhere, so the candidate list (and therefore the
    batched trajectory) is ``PYTHONHASHSEED``-independent.  Same-net
    pairs are dropped at the source rather than priced-then-discarded.
    """
    pairs: list[tuple[str, Pin, Pin]] = []
    seen: set[tuple[Pin, Pin]] = set()
    for sg in sgn.nontrivial():
        for swap in enumerate_swaps(
            sg, leaves_only=True, include_inverting=False, network=network
        ):
            key = (swap.pin_a, swap.pin_b)
            if key in seen:
                continue
            seen.add(key)
            pairs.append((sg.root, swap.pin_a, swap.pin_b))
    return pairs


def _pure_crosses(sgn) -> list[tuple[CrossSwap, list[tuple[Pin, str]]]]:
    """Cross swaps that move wires only (no inverter is ever added)."""
    pure: list[tuple[CrossSwap, list[tuple[Pin, str]]]] = []
    for cross in find_cross_swaps(sgn):
        bindings = cross_swap_bindings(sgn, cross)
        if bindings is not None:
            pure.append((cross, bindings))
    return pure


def _commit_batch(
    network: Network,
    engine: WirelengthEngine,
    sgn,
    pairs: list[tuple[str, Pin, Pin]],
    crosses: list[tuple[CrossSwap, list[tuple[Pin, str]]]],
    min_gain: float,
) -> tuple[int, int]:
    """Score every candidate, commit a maximal conflict-free subset.

    Accepted moves may not share a net: each net's bounding box is
    then edited by at most one move, the priced deltas add exactly,
    and total HPWL drops by their sum.  Ties are broken by a
    deterministic canonical key (kind, supergate roots, pins).
    """
    deltas = engine.score_swaps(
        [(pin_a, pin_b) for _, pin_a, pin_b in pairs]
    )
    candidates: list[tuple[float, int, tuple, set[str], object]] = []
    for (root, pin_a, pin_b), delta in zip(pairs, deltas):
        if delta < -min_gain:
            footprint = engine.footprint_nets([pin_a, pin_b])
            candidates.append(
                (delta, 0, (root, pin_a, pin_b), footprint,
                 (pin_a, pin_b))
            )
    for cross, bindings in crosses:
        delta = engine.rebind_delta(bindings)
        if delta < -min_gain:
            footprint = engine.footprint_nets(
                [pin for pin, _ in bindings]
            ) | {net for _, net in bindings}
            candidates.append(
                (delta, 1,
                 (cross.parent_root, cross.sg1_root, cross.sg2_root),
                 footprint, (cross, bindings))
            )
    candidates.sort(key=lambda item: (item[0], item[1], item[2]))
    touched: set[str] = set()
    leaves = crossings = 0
    for _delta, kind, _key, footprint, payload in candidates:
        if footprint & touched:
            continue
        if kind == 0:
            pin_a, pin_b = payload
            network.swap_fanins(pin_a, pin_b)
            leaves += 1
        else:
            cross, _bindings = payload
            apply_cross_swap(network, sgn, cross)
            crossings += 1
        touched |= footprint
    return leaves, crossings
