"""Wirelength-driven rewiring (Section 5, optimization use (1)).

"If two signals a and b come from geometrically fixed locations and all
gates have been placed, swapping of a and b can clearly reduce the wire
length" — this module does exactly that: symmetric non-inverting leaf
swaps (and inverter-free cross-supergate fanin-group exchanges)
accepted whenever they shorten the estimated wiring, with the
placement frozen.

Two execution paths share one candidate-pricing contract (candidates
are **never** priced by mutating the network — pricing fires zero
events into subscribed engines; see ``docs/architecture.md``):

* **batched** (the default): every pass enumerates the full candidate
  set once — leaf swaps of every non-trivial supergate plus pure
  cross swaps — scores it as one vectorized batch against a
  :class:`~repro.place.hpwl.WirelengthEngine`, and commits a maximal
  conflict-free subset (no two accepted moves sharing a net, so the
  priced deltas are exactly additive).  Scoring-and-committing repeats
  within the pass until no candidate improves: non-inverting leaf
  swaps preserve the supergate partition, so the pin-pair set stays
  valid and only the driving nets need re-reading.  Supergates are
  refreshed *incrementally* between passes through the PR-1
  :class:`~repro.rapids.engine.SupergateCache`.
* **greedy** (the reference): the historical interpreted trajectory —
  supergates re-extracted per pass, candidates priced and applied one
  at a time in enumeration order.  Deltas are bit-identical to the
  old trial-apply-and-revert implementation (pure extrema selection),
  minus the two mutation events it fired per candidate.

With a *timing_engine* the polish becomes **timing-aware**: a swap is
committed only when its HPWL delta improves **and** its projected
slack neighborhood stays inside a guard band (*slack_margin*, default
0.0 — never eat into the critical path; negative margins trade bounded
delay for wire).  Candidates are pre-filtered by the engine's
vectorized frontier projection
(:meth:`~repro.timing.sta.TimingEngine.project_swap_slacks`), then
verified by the exact full-cone projection, whose ``touched`` sets
gate conflict-freedom: accepted moves may share neither a bounding-box
net (HPWL deltas add exactly) nor a timing-neighborhood net (slack
projections add exactly).  After every committed batch the timing
engine re-folds incrementally (``apply_and_update``); the realized
slacks are compared against the projections, and drift beyond
:data:`~repro.timing.sta.PROJECTION_DRIFT_TOL` falls back to
re-pricing the remaining candidates from the refreshed state (the
fixed-point loop re-scores every iteration, so nothing stale is ever
reused).  The engine's timing target is pinned to the pre-polish
critical delay when no period is set, so "no worse than the guard
band" means "no worse than the netlist we started polishing".

The batched path must end at a total HPWL no worse than greedy's on
the quick set (``benchmarks/bench_wirelength.py`` asserts it, along
with zero delay degradation for the timing-aware default) and is
function-preserving by construction (every accepted move is a legal
symmetry application; the property tests sweep random networks ×
random placements through ``networks_equivalent``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..contracts import projection_only
from ..network.netlist import Network, Pin
from ..place.hpwl import WirelengthEngine
from ..place.placement import Placement, net_terminals, total_hpwl
from ..symmetry.cross import (
    CrossSwap,
    apply_cross_swap,
    cross_swap_bindings,
    find_cross_swaps,
)
from ..symmetry.supergate import extract_supergates
from ..symmetry.swap import apply_swap, enumerate_swaps
from ..timing.sta import PROJECTION_DRIFT_TOL, TimingEngine

#: Opt-in to the determinism lint (rule D of ``python -m tools.lint``):
#: this module's float accumulations and tie-breaks must never follow
#: set-iteration (= PYTHONHASHSEED) order.
__deterministic__ = True


@dataclass
class WirelengthResult:
    """Outcome of a wirelength-rewiring run."""

    initial_hpwl: float
    final_hpwl: float
    swaps_applied: int
    passes: int
    mode: str = "greedy"
    cross_swaps_applied: int = 0
    candidates_scored: int = 0
    #: True when a timing engine gated every commit on projected slack.
    timing_aware: bool = False
    #: Guard band the slack gate enforced (ns; only with timing_aware).
    slack_margin: float = 0.0
    #: Wirelength-improving candidates rejected by the slack gate.
    timing_rejected: int = 0
    #: Worst |projected - realized| slack disagreement seen post-commit.
    projection_drift: float = 0.0
    #: Batches whose drift exceeded the tolerance and fell back to
    #: re-pricing from the refreshed engine.
    drift_repricings: int = 0
    #: Coloring-sourced cross-supergate swaps committed (class_swaps).
    class_swaps_applied: int = 0
    #: Class candidates that passed the simulation gate into batches.
    class_candidates_verified: int = 0
    #: Class candidates the simulation gate refuted (never batched).
    class_candidates_rejected: int = 0

    @property
    def improvement_percent(self) -> float:
        if self.initial_hpwl <= 0:
            return 0.0
        return 100.0 * (
            self.initial_hpwl - self.final_hpwl
        ) / self.initial_hpwl


def _hpwl_of(terminals: list[tuple[float, float]]) -> float:
    if len(terminals) < 2:
        return 0.0
    xs = [t[0] for t in terminals]
    ys = [t[1] for t in terminals]
    return (max(xs) - min(xs)) + (max(ys) - min(ys))


def _exchanged(
    terminals: list[tuple[float, float]],
    removed: tuple[float, float],
    added: tuple[float, float],
) -> list[tuple[float, float]]:
    edited = list(terminals)
    edited.remove(removed)
    edited.append(added)
    return edited


@projection_only
def swap_hpwl_delta(
    network: Network, placement: Placement, swap
) -> float:
    """Wirelength change (negative = shorter) of a candidate swap.

    Footprint-only: the affected nets' terminal multisets are edited
    arithmetically, so pricing never mutates the network — no version
    bump, no mutation events into subscribed engines.  The returned
    value is bit-identical to the historical trial-apply-and-revert
    computation (extrema of the same multisets).
    """
    net_a = network.fanin_net(swap.pin_a)
    net_b = network.fanin_net(swap.pin_b)
    if net_a == net_b:
        return 0.0
    loc_a = placement.locations[swap.pin_a.gate]
    loc_b = placement.locations[swap.pin_b.gate]
    terms_a = net_terminals(network, placement, net_a)
    terms_b = net_terminals(network, placement, net_b)
    before = _hpwl_of(terms_a) + _hpwl_of(terms_b)
    after = _hpwl_of(_exchanged(terms_a, loc_a, loc_b)) + _hpwl_of(
        _exchanged(terms_b, loc_b, loc_a)
    )
    return after - before


def swap_bindings(
    network: Network, pin_a: Pin, pin_b: Pin
) -> tuple[tuple[Pin, str], tuple[Pin, str]]:
    """Rebinding view of a non-inverting pin swap (for slack projection)."""
    return (
        (pin_a, network.fanin_net(pin_b)),
        (pin_b, network.fanin_net(pin_a)),
    )


class _TimingGate:
    """Slack guard for wirelength commits, wrapping one timing engine.

    Pins the engine's timing target to the pre-polish critical delay
    when no period is set, so every projected slack is measured
    against the netlist the polish started from.  Collects the
    rejection / drift statistics reported on the result.
    """

    def __init__(self, engine: TimingEngine, margin: float) -> None:
        engine.refresh()
        if engine.period is None:
            engine.period = engine.max_delay
        self.engine = engine
        self.margin = margin
        #: unique rejected candidates — the fixed-point loop re-scores
        #: (and re-rejects) the same candidate every iteration, so a
        #: plain counter would inflate with the iteration count
        self.rejected_keys: set[tuple] = set()
        self.max_drift = 0.0
        self.repricings = 0

    @property
    def rejected(self) -> int:
        return len(self.rejected_keys)

    def prefilter(self, bindings_batch: list) -> list[bool]:
        """Vectorized frontier projection over the whole candidate set."""
        projections = self.engine.project_swap_slacks(bindings_batch)
        return [p.admissible(self.margin) for p in projections]

    def reject(self, bindings) -> None:
        self.rejected_keys.add(tuple(bindings))

    def verify(self, bindings):
        """Exact full-cone projection, or ``None`` when inadmissible."""
        projection = self.engine.project_swap_slacks(
            [bindings], exact=True
        )[0]
        if not projection.admissible(self.margin):
            self.reject(bindings)
            return None
        return projection

    def refold(self, committed: list) -> None:
        """Post-commit ``apply_and_update`` + projected-vs-realized check.

        With pairwise-disjoint ``touched`` sets the projections must
        realize exactly (to float noise); measurable drift means an
        assumption broke, so the batch falls back to re-pricing —
        structurally, the next commit iteration re-scores everything
        from the engine state this refresh just made truthful.
        """
        self.engine.refresh()
        drift = 0.0
        for projection in committed:
            for net, value in projection.projected.items():
                realized = self.engine.slack.get(net)
                if realized is not None:
                    drift = max(drift, abs(realized - value))
        self.max_drift = max(self.max_drift, drift)
        if drift > PROJECTION_DRIFT_TOL:
            self.repricings += 1


def reduce_wirelength(
    network: Network,
    placement: Placement,
    max_passes: int = 4,
    min_gain: float = 1e-9,
    batched: bool = True,
    include_cross: bool = True,
    engine: WirelengthEngine | None = None,
    timing_engine: TimingEngine | None = None,
    slack_margin: float = 0.0,
    class_swaps: bool = False,
) -> WirelengthResult:
    """Shorten estimated wiring by symmetry-based rewiring.

    Only non-inverting swaps and inverter-free cross exchanges are
    used (a move that adds cells is never justified by wirelength
    alone), so the placement is untouched and the gate count constant.
    *batched* selects the vectorized conflict-free path (see module
    docstring); ``batched=False`` runs the serial greedy reference.
    *engine* lets callers reuse a prebuilt
    :class:`~repro.place.hpwl.WirelengthEngine` across runs.

    With *timing_engine* every commit is additionally gated on its
    projected slack neighborhood staying above *slack_margin* (ns)
    relative to the engine's timing target — pinned to the pre-polish
    critical delay when the engine has no explicit period — so the
    default margin of 0.0 guarantees the polish never degrades the
    re-timed delay.  Negative margins permit bounded degradation,
    positive margins keep a safety band.

    *class_swaps* (batched path only, default off) adds the
    whole-netlist coloring candidate source: pins reading structurally
    identical nets (:mod:`repro.symmetry.coloring`) become swap
    candidates the per-supergate enumeration cannot see.  Each is
    verified by simulation
    (:func:`~repro.symmetry.verify.nets_functionally_equal`) before it
    may enter a batch, carries a cone-wide conflict footprint, and is
    considered on the first commit iteration of each pass only —
    trajectories with the knob off are unchanged.
    """
    gate = (
        _TimingGate(timing_engine, slack_margin)
        if timing_engine is not None else None
    )
    if batched:
        return _reduce_batched(
            network, placement, max_passes, min_gain, include_cross,
            engine, gate, class_swaps,
        )
    return _reduce_greedy(network, placement, max_passes, min_gain, gate)


# ----------------------------------------------------------------------
# greedy reference path (the historical trajectory)
# ----------------------------------------------------------------------
def _reduce_greedy(
    network: Network,
    placement: Placement,
    max_passes: int,
    min_gain: float,
    gate: _TimingGate | None,
) -> WirelengthResult:
    initial = total_hpwl(network, placement)
    applied = 0
    passes = 0
    scored = 0
    for _ in range(max_passes):
        passes += 1
        improved = 0
        sgn = extract_supergates(network)
        for sg in sgn.nontrivial():
            for swap in enumerate_swaps(
                sg, leaves_only=True, include_inverting=False,
                network=network,
            ):
                delta = swap_hpwl_delta(network, placement, swap)
                scored += 1
                if delta < -min_gain:
                    if gate is not None and gate.verify(
                        swap_bindings(network, swap.pin_a, swap.pin_b)
                    ) is None:
                        continue
                    apply_swap(network, swap)
                    improved += 1
        applied += improved
        if not improved:
            break
    result = WirelengthResult(
        initial_hpwl=initial,
        final_hpwl=total_hpwl(network, placement),
        swaps_applied=applied,
        passes=passes,
        mode="greedy",
        candidates_scored=scored,
    )
    _attach_timing_stats(result, gate)
    return result


# ----------------------------------------------------------------------
# batched engine path
# ----------------------------------------------------------------------
def _reduce_batched(
    network: Network,
    placement: Placement,
    max_passes: int,
    min_gain: float,
    include_cross: bool,
    engine: WirelengthEngine | None,
    gate: _TimingGate | None,
    class_swaps: bool = False,
) -> WirelengthResult:
    from .engine import SupergateCache

    placement.ensure_covered(network)
    if engine is None:
        engine = WirelengthEngine(network, placement)
    cache = SupergateCache(network)
    initial = engine.total_hpwl()
    leaf_applied = 0
    cross_applied = 0
    klass_applied = 0
    klass_verified = 0
    klass_rejected = 0
    passes = 0
    scored_before = engine.candidates_scored
    for _ in range(max_passes):
        passes += 1
        sgn = cache.get()
        pairs = _leaf_pairs(sgn, network)
        crosses = (
            _pure_crosses(sgn) if include_cross else []
        )
        klass: list[tuple[Pin, Pin, frozenset[str]]] = []
        if class_swaps:
            # re-verified every pass: the premise (identical cone
            # functions) must hold on the *current* netlist
            klass, rejected = verified_class_swaps(network)
            klass_verified += len(klass)
            klass_rejected += rejected
        pass_applied = 0
        first_iteration = True
        while True:
            leaves, crossings, klasses = _commit_batch(
                network, engine, sgn, pairs,
                crosses if first_iteration else [],
                klass if first_iteration else [], min_gain, gate,
            )
            first_iteration = False
            leaf_applied += leaves
            cross_applied += crossings
            klass_applied += klasses
            pass_applied += leaves + crossings + klasses
            if leaves + crossings + klasses == 0:
                break
        if pass_applied == 0:
            break
    result = WirelengthResult(
        initial_hpwl=initial,
        final_hpwl=engine.total_hpwl(),
        swaps_applied=leaf_applied,
        passes=passes,
        mode="batched",
        cross_swaps_applied=cross_applied,
        candidates_scored=engine.candidates_scored - scored_before,
        class_swaps_applied=klass_applied,
        class_candidates_verified=klass_verified,
        class_candidates_rejected=klass_rejected,
    )
    _attach_timing_stats(result, gate)
    return result


def _attach_timing_stats(
    result: WirelengthResult, gate: _TimingGate | None
) -> None:
    if gate is None:
        return
    result.timing_aware = True
    result.slack_margin = gate.margin
    result.timing_rejected = gate.rejected
    result.projection_drift = gate.max_drift
    result.drift_repricings = gate.repricings


def _leaf_pairs(sgn, network: Network) -> list[tuple[str, Pin, Pin]]:
    """Deduplicated, deterministically ordered leaf-swap candidates.

    Supergate iteration follows the partition's insertion order and
    pin pairing follows leaf-extraction order — no set/dict-hash
    iteration anywhere, so the candidate list (and therefore the
    batched trajectory) is ``PYTHONHASHSEED``-independent.  Same-net
    pairs are dropped at the source rather than priced-then-discarded.
    """
    pairs: list[tuple[str, Pin, Pin]] = []
    seen: set[tuple[Pin, Pin]] = set()
    for sg in sgn.nontrivial():
        for swap in enumerate_swaps(
            sg, leaves_only=True, include_inverting=False, network=network
        ):
            key = (swap.pin_a, swap.pin_b)
            if key in seen:
                continue
            seen.add(key)
            pairs.append((sg.root, swap.pin_a, swap.pin_b))
    return pairs


def verified_class_swaps(
    network: Network,
    cap: int = 32,
    coloring=None,
) -> tuple[list[tuple[Pin, Pin, frozenset[str]]], int]:
    """Simulation-verified cross-supergate class-swap candidates.

    Generates class-mate pin pairs from whole-netlist cone coloring
    (:func:`~repro.symmetry.coloring.class_swap_candidates`) and keeps
    only the pairs whose nets a simulation sweep confirms functionally
    identical — the verification gate the differential test harness
    pins down.  Returns ``(candidates, rejected)`` where each
    candidate is ``(pin_a, pin_b, cone-wide footprint)``; applying one
    is a plain ``swap_fanins``, so pricing and slack projection reuse
    the leaf-swap machinery unchanged.
    """
    from ..symmetry.coloring import class_swap_candidates, color_network
    from ..symmetry.verify import nets_functionally_equal

    if coloring is None:
        coloring = color_network(network)
    verified: list[tuple[Pin, Pin, frozenset[str]]] = []
    rejected = 0
    for cand in class_swap_candidates(network, coloring, cap=cap):
        if nets_functionally_equal(network, cand.net_a, cand.net_b):
            verified.append((cand.pin_a, cand.pin_b, cand.footprint))
        else:
            rejected += 1
    return verified, rejected


def _pure_crosses(sgn) -> list[tuple[CrossSwap, list[tuple[Pin, str]]]]:
    """Cross swaps that move wires only (no inverter is ever added)."""
    pure: list[tuple[CrossSwap, list[tuple[Pin, str]]]] = []
    for cross in find_cross_swaps(sgn):
        bindings = cross_swap_bindings(sgn, cross)
        if bindings is not None:
            pure.append((cross, bindings))
    return pure


def _select_batch(
    network: Network,
    engine: WirelengthEngine,
    pairs: list[tuple[str, Pin, Pin]],
    crosses: list[tuple[CrossSwap, list[tuple[Pin, str]]]],
    klass: list[tuple[Pin, Pin, frozenset[str]]],
    min_gain: float,
    gate: _TimingGate | None,
) -> list[tuple[int, object, object, frozenset[str]]]:
    """Score every candidate, select a maximal conflict-free subset.

    Read-only: pricing, slack projection and conflict resolution never
    mutate the network, so a selection computed against a frozen
    replica (a worker's snapshot rebuild) is bit-identical to one
    computed against the live engine — the property the partitioned
    pipeline's concurrent region evaluation rests on.

    Accepted moves may not share a net: each net's bounding box is
    then edited by at most one move, the priced deltas add exactly,
    and total HPWL drops by their sum.  Ties are broken by a
    deterministic canonical key (kind, supergate roots, pins).

    With a timing *gate*, selection is two-phase: candidates are
    filtered by the batched frontier slack projection, the survivors
    verified (in priced order) by the exact full-cone projection, and
    conflict-freedom additionally requires pairwise-disjoint timing
    neighborhoods (``touched``) so the projected slacks of the
    accepted subset realize exactly.

    Returns ``(kind, payload, projection, footprint)`` per accepted
    move — everything :func:`_apply_batch` and the cross-region
    committer need, and nothing tied to this process (pins, nets and
    projections name gates/nets, so selections pickle across workers).
    """
    deltas = engine.score_swaps(
        [(pin_a, pin_b) for _, pin_a, pin_b in pairs]
    )
    candidates: list[tuple[float, int, tuple, set[str], object, tuple]] = []
    for (root, pin_a, pin_b), delta in zip(pairs, deltas):
        if delta < -min_gain:
            footprint = engine.footprint_nets([pin_a, pin_b])
            candidates.append(
                (delta, 0, (root, pin_a, pin_b), footprint,
                 (pin_a, pin_b),
                 swap_bindings(network, pin_a, pin_b))
            )
    for cross, bindings in crosses:
        delta = engine.rebind_delta(bindings)
        if delta < -min_gain:
            footprint = engine.footprint_nets(
                [pin for pin, _ in bindings]
            ) | {net for _, net in bindings}
            candidates.append(
                (delta, 1,
                 (cross.parent_root, cross.sg1_root, cross.sg2_root),
                 footprint, (cross, bindings), tuple(bindings))
            )
    # coloring-sourced class swaps: priced exactly like leaf swaps
    # (the move *is* a swap_fanins), but carrying the cone-wide
    # footprint that protects their verified functional premise
    klass_deltas = engine.score_swaps(
        [(pin_a, pin_b) for pin_a, pin_b, _ in klass]
    ) if klass else []
    for (pin_a, pin_b, footprint), delta in zip(klass, klass_deltas):
        if delta < -min_gain:
            candidates.append(
                (delta, 2, (pin_a, pin_b), set(footprint),
                 (pin_a, pin_b),
                 swap_bindings(network, pin_a, pin_b))
            )
    candidates.sort(key=lambda item: (item[0], item[1], item[2]))
    admissible = (
        gate.prefilter([item[5] for item in candidates])
        if gate is not None and candidates else []
    )
    touched: set[str] = set()
    timing_touched: set[str] = set()
    accepted: list[tuple[int, object, object, frozenset[str]]] = []
    for index, (_delta, kind, _key, footprint, payload, bindings) in (
        enumerate(candidates)
    ):
        if footprint & touched:
            continue
        if gate is not None:
            if not admissible[index]:
                gate.reject(bindings)
                continue
            projection = gate.verify(bindings)
            if projection is None:
                continue
            if projection.touched & timing_touched:
                continue
            timing_touched |= projection.touched
            accepted.append((kind, payload, projection, frozenset(footprint)))
        else:
            accepted.append((kind, payload, None, frozenset(footprint)))
        touched |= footprint
    return accepted


def _apply_batch(
    network: Network,
    sgn,
    accepted: list[tuple[int, object, object, frozenset[str]]],
) -> tuple[int, int, int]:
    """Commit an accepted selection in order.

    Returns ``(leaves, crosses, class_swaps)``.  The only mutation
    point of the batched path: everything upstream
    (:func:`_select_batch`) is projection-only.  Callers that batch
    multiple selections per timing refold (the partitioned round
    committer) invoke ``gate.refold`` themselves.
    """
    leaves = crossings = klasses = 0
    for kind, payload, _projection, _footprint in accepted:
        if kind == 0:
            pin_a, pin_b = payload
            network.swap_fanins(pin_a, pin_b)
            leaves += 1
        elif kind == 2:
            pin_a, pin_b = payload
            network.swap_fanins(pin_a, pin_b)
            klasses += 1
        else:
            cross, _bindings = payload
            apply_cross_swap(network, sgn, cross)
            crossings += 1
    return leaves, crossings, klasses


def _commit_batch(
    network: Network,
    engine: WirelengthEngine,
    sgn,
    pairs: list[tuple[str, Pin, Pin]],
    crosses: list[tuple[CrossSwap, list[tuple[Pin, str]]]],
    klass: list[tuple[Pin, Pin, frozenset[str]]],
    min_gain: float,
    gate: _TimingGate | None,
) -> tuple[int, int, int]:
    """One select + apply + refold iteration (see :func:`_select_batch`).

    All accepted moves are committed and the engine re-folds once,
    with the drift fallback documented on :class:`_TimingGate`.
    """
    accepted = _select_batch(
        network, engine, pairs, crosses, klass, min_gain, gate
    )
    leaves, crossings, klasses = _apply_batch(network, sgn, accepted)
    if gate is not None and accepted:
        gate.refold([p for _, _, p, _ in accepted if p is not None])
    return leaves, crossings, klasses
