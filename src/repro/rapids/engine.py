"""RAPIDS: Rewiring After Placement usIng easily Detectable Symmetries.

The paper's prototype tool, reimplemented.  Three optimization modes
mirror Section 6:

* ``gsg``    — supergate-based rewiring only: each non-trivial
  supergate's legal pin swaps are its "library implementations";
* ``gs``     — Coudert gate sizing only, every mapped gate a site;
* ``gsg_gs`` — the combination: rewiring for gates covered by
  non-trivial supergates, sizing for gates covered only by trivial
  ones (minimum perturbation of the placement).

All modes run the same two-phase min-slack / relaxation loop from
``repro.sizing``; the placement is never modified (new inverters adopt
their sink's location).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..library.cells import Library
from ..network.netlist import Network
from ..place.placement import Placement, perturbation
from ..sizing.coudert import OptimizeResult, Site, optimize
from ..sizing.moves import resize_sites
from ..symmetry.redundancy import find_easy_redundancies, redundancy_counts
from ..symmetry.supergate import extract_supergates
from ..timing.sta import TimingEngine
from ..verify.equiv import networks_equivalent
from .moves import swap_sites

MODES = ("gsg", "gs", "gsg_gs")


@dataclass
class RapidsResult:
    """Everything one Table 1 row needs, for one mode."""

    mode: str
    optimize: OptimizeResult
    coverage_percent: float
    max_supergate_inputs: int
    redundancies: int
    perturbation: dict[str, float] = field(default_factory=dict)
    equivalent: bool | None = None

    @property
    def improvement_percent(self) -> float:
        return self.optimize.improvement_percent

    @property
    def area_delta_percent(self) -> float:
        return self.optimize.area_delta_percent

    @property
    def runtime_seconds(self) -> float:
        return self.optimize.runtime_seconds


def _gsg_factory(library: Library, include_inverting: bool = True):
    def factory(network: Network, engine: TimingEngine) -> list[Site]:
        sgn = extract_supergates(network)
        return swap_sites(
            network, engine, sgn, include_inverting=include_inverting
        )

    return factory


def _gs_factory(library: Library):
    def factory(network: Network, engine: TimingEngine) -> list[Site]:
        return resize_sites(network, library)

    return factory


def _gsg_gs_factory(library: Library):
    def factory(network: Network, engine: TimingEngine) -> list[Site]:
        sgn = extract_supergates(network)
        sites = swap_sites(network, engine, sgn)
        nontrivial_gates = {
            name
            for sg in sgn.nontrivial()
            for name in sg.covered
        }
        sites.extend(
            resize_sites(
                network,
                library,
                gate_filter=lambda name: name not in nontrivial_gates,
            )
        )
        return sites

    return factory


def run_rapids(
    network: Network,
    placement: Placement,
    library: Library,
    mode: str = "gsg_gs",
    max_rounds: int = 12,
    batch_limit: int = 64,
    check_equivalence: bool = False,
    collect_log: bool = False,
) -> RapidsResult:
    """Optimize a placed mapped network in place; returns the report.

    With ``check_equivalence`` the optimized network is verified
    functionally identical to the input (always on in the test suite;
    optional in benchmarks for speed).
    """
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r}; pick one of {MODES}")
    reference = network.copy() if check_equivalence else None
    placement_before = placement.copy()
    sgn = extract_supergates(network)
    coverage = sgn.coverage() * 100.0
    max_inputs = sgn.max_supergate_inputs()
    redundancies = redundancy_counts(
        find_easy_redundancies(network, sgn)
    )["events"]
    if mode == "gsg":
        factory = _gsg_factory(library)
    elif mode == "gs":
        factory = _gs_factory(library)
    else:
        factory = _gsg_gs_factory(library)
    opt = optimize(
        network,
        placement,
        library,
        site_factory=factory,
        mode=mode,
        max_rounds=max_rounds,
        batch_limit=batch_limit,
        collect_log=collect_log,
    )
    result = RapidsResult(
        mode=mode,
        optimize=opt,
        coverage_percent=coverage,
        max_supergate_inputs=max_inputs,
        redundancies=redundancies,
        perturbation=perturbation(placement_before, placement),
    )
    if reference is not None:
        result.equivalent = networks_equivalent(reference, network)
    return result
