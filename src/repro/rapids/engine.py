"""RAPIDS: Rewiring After Placement usIng easily Detectable Symmetries.

The paper's prototype tool, reimplemented.  Three optimization modes
mirror Section 6:

* ``gsg``    — supergate-based rewiring only: each non-trivial
  supergate's legal pin swaps are its "library implementations";
* ``gs``     — Coudert gate sizing only, every mapped gate a site;
* ``gsg_gs`` — the combination: rewiring for gates covered by
  non-trivial supergates, sizing for gates covered only by trivial
  ones (minimum perturbation of the placement).

All modes run the same two-phase min-slack / relaxation loop from
``repro.sizing``; the placement is never modified (new inverters adopt
their sink's location).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..library.cells import Library
from ..network.netlist import Network
from ..place.placement import Placement, perturbation
from ..sizing.coudert import OptimizeResult, Site, optimize
from ..sizing.moves import resize_sites
from ..symmetry.redundancy import find_easy_redundancies, redundancy_counts
from ..symmetry.supergate import (
    SupergateNetwork,
    extract_supergates,
    grow_supergate,
)
from ..timing.sta import TimingEngine
from ..verify.equiv import networks_equivalent
from .moves import swap_sites

MODES = ("gsg", "gs", "gsg_gs")


class SupergateCache:
    """Supergate extraction cached across optimizer rounds.

    Subscribes to the network's mutation events; :meth:`get` drops
    only the supergates whose covered gates — or whose boundary nets'
    fanout — were touched since the previous extraction and re-grows
    the freed region, reusing every untouched supergate.  Falls back
    to a full re-extraction when an untracked mutation happens or a
    boundary shifts beyond the tracked region.
    """

    def __init__(self, network: Network) -> None:
        self.network = network
        self.full_extractions = 0
        self.partial_refreshes = 0
        self._sgn: SupergateNetwork | None = None
        self._touched_gates: set[str] = set()
        self._touched_nets: set[str] = set()
        self._removed: set[str] = set()
        self._full = True
        network.subscribe(self)

    def notify_network_event(self, kind: str, data: dict) -> None:
        if kind == "replace_fanin":
            self._touched_nets.add(data["old"])
            self._touched_nets.add(data["new"])
            self._touched_gates.add(data["pin"].gate)
        elif kind == "swap_fanins":
            self._touched_nets.add(data["net_a"])
            self._touched_nets.add(data["net_b"])
            self._touched_gates.add(data["pin_a"].gate)
            self._touched_gates.add(data["pin_b"].gate)
        elif kind == "add_gate":
            self._removed.discard(data["gate"])
            self._touched_gates.add(data["gate"])
            self._touched_nets.update(data["fanins"])
        elif kind == "remove_gate":
            self._removed.add(data["gate"])
            self._touched_gates.discard(data["gate"])
            self._touched_nets.update(data["fanins"])
        elif kind == "set_gate_type":
            # the gate's own net is a growth boundary for its
            # consumers' supergates: a class change (say XOR -> INV)
            # can make it absorbable, so their owners must re-grow
            self._touched_gates.add(data["gate"])
            self._touched_nets.add(data["gate"])
            self._touched_nets.update(data["fanins"])
        elif kind == "set_fanins":
            self._touched_gates.add(data["gate"])
            self._touched_nets.add(data["gate"])
            self._touched_nets.update(data["old"])
            self._touched_nets.update(data["new"])
        elif kind == "set_cell":
            pass  # cell binding does not change supergate structure
        elif kind in ("add_output", "replace_output", "add_input"):
            # fanout degree counts primary-output use, so coverage
            # boundaries can move when PO bindings change
            for key in ("net", "old", "new"):
                if key in data:
                    self._touched_nets.add(data[key])
        elif kind == "restore":
            if data["io_changed"]:
                self._full = True
                return
            for name, fanins in data["removed"]:
                self._removed.add(name)
                self._touched_gates.discard(name)
                self._touched_nets.update(fanins)
            for name, fanins in data["added"]:
                self._removed.discard(name)
                self._touched_gates.add(name)
                self._touched_nets.update(fanins)
            for name, old_fanins, new_fanins in data["changed"]:
                self._touched_gates.add(name)
                self._touched_nets.add(name)  # gtype may have changed
                self._touched_nets.update(old_fanins)
                self._touched_nets.update(new_fanins)
        else:
            self._full = True

    def get(self) -> SupergateNetwork:
        """Current supergate partition, refreshed as locally as possible."""
        network = self.network
        if self._sgn is None or self._full:
            return self._extract_full()
        sgn = self._sgn
        if not (self._touched_gates or self._touched_nets or self._removed):
            sgn.network_version = network.version
            return sgn
        # gates whose coverage may have changed: the touched gates, the
        # drivers and the consumers of every touched net (the net's
        # fanout degree gates supergate growth across it)
        seeds: set[str] = set()
        for gate in self._touched_gates:
            if gate in network and not network.is_input(gate):
                seeds.add(gate)
        for net in self._touched_nets:
            if net not in network:
                continue
            if not network.is_input(net):
                seeds.add(net)
            for pin in network.fanout(net):
                seeds.add(pin.gate)
        invalid_roots: set[str] = set()
        region: set[str] = set()
        for gate in seeds:
            root = sgn.owner.get(gate)
            if root is None:
                region.add(gate)  # new gate, never covered
            else:
                invalid_roots.add(root)
        for name in self._removed:
            root = sgn.owner.get(name)
            if root is not None:
                invalid_roots.add(root)
        for root in invalid_roots:
            sg = sgn.supergates.pop(root, None)
            if sg is None:
                continue
            for gate in sg.covered:
                if sgn.owner.get(gate) == root:
                    del sgn.owner[gate]
                if gate in network:
                    region.add(gate)
        for name in self._removed:
            sgn.owner.pop(name, None)
            sgn.supergates.pop(name, None)
            region.discard(name)
        for name in reversed(network.topo_order()):
            if name not in region or name in sgn.owner:
                continue
            sg = grow_supergate(network, name)
            for covered_name in sg.covered:
                if sgn.owner.get(covered_name) is not None:
                    # growth crossed into a supergate we considered
                    # valid: the tracked region under-approximated the
                    # change — rebuild everything
                    return self._extract_full()
            for covered_name in sg.covered:
                sgn.owner[covered_name] = name
            sgn.supergates[name] = sg
        sgn.network_version = network.version
        self._reset_dirty()
        self.partial_refreshes += 1
        return sgn

    def _extract_full(self) -> SupergateNetwork:
        self._sgn = extract_supergates(self.network)
        self._reset_dirty()
        self.full_extractions += 1
        return self._sgn

    def _reset_dirty(self) -> None:
        self._touched_gates.clear()
        self._touched_nets.clear()
        self._removed.clear()
        self._full = False


@dataclass
class RapidsResult:
    """Everything one Table 1 row needs, for one mode."""

    mode: str
    optimize: OptimizeResult
    coverage_percent: float
    max_supergate_inputs: int
    redundancies: int
    perturbation: dict[str, float] = field(default_factory=dict)
    equivalent: bool | None = None

    @property
    def improvement_percent(self) -> float:
        return self.optimize.improvement_percent

    @property
    def area_delta_percent(self) -> float:
        return self.optimize.area_delta_percent

    @property
    def runtime_seconds(self) -> float:
        return self.optimize.runtime_seconds


def _cached_sgn(slot: list[SupergateCache | None], network: Network):
    """Supergate partition for *network* through a one-slot cache.

    The optimizer calls its site factory on the same live network
    every round; the identity check guards against a caller reusing
    one factory across designs.
    """
    cache = slot[0]
    if cache is None or cache.network is not network:
        cache = SupergateCache(network)
        slot[0] = cache
    return cache.get()


def _gsg_factory(library: Library, include_inverting: bool = True):
    slot: list[SupergateCache | None] = [None]

    def factory(network: Network, engine: TimingEngine) -> list[Site]:
        sgn = _cached_sgn(slot, network)
        return swap_sites(
            network, engine, sgn, include_inverting=include_inverting
        )

    return factory


def _gs_factory(library: Library):
    def factory(network: Network, engine: TimingEngine) -> list[Site]:
        return resize_sites(network, library)

    return factory


def _gsg_gs_factory(library: Library):
    slot: list[SupergateCache | None] = [None]

    def factory(network: Network, engine: TimingEngine) -> list[Site]:
        sgn = _cached_sgn(slot, network)
        sites = swap_sites(network, engine, sgn)
        nontrivial_gates = {
            name
            for sg in sgn.nontrivial()
            for name in sg.covered
        }
        sites.extend(
            resize_sites(
                network,
                library,
                gate_filter=lambda name: name not in nontrivial_gates,
            )
        )
        return sites

    return factory


def run_rapids(
    network: Network,
    placement: Placement,
    library: Library,
    mode: str = "gsg_gs",
    max_rounds: int = 12,
    batch_limit: int = 64,
    check_equivalence: bool = False,
    collect_log: bool = False,
    incremental: bool = True,
) -> RapidsResult:
    """Optimize a placed mapped network in place; returns the report.

    With ``check_equivalence`` the optimized network is verified
    functionally identical to the input (always on in the test suite;
    optional in benchmarks for speed).
    """
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r}; pick one of {MODES}")
    reference = network.copy() if check_equivalence else None
    placement_before = placement.copy()
    sgn = extract_supergates(network)
    coverage = sgn.coverage() * 100.0
    max_inputs = sgn.max_supergate_inputs()
    redundancies = redundancy_counts(
        find_easy_redundancies(network, sgn)
    )["events"]
    if mode == "gsg":
        factory = _gsg_factory(library)
    elif mode == "gs":
        factory = _gs_factory(library)
    else:
        factory = _gsg_gs_factory(library)
    opt = optimize(
        network,
        placement,
        library,
        site_factory=factory,
        mode=mode,
        max_rounds=max_rounds,
        batch_limit=batch_limit,
        collect_log=collect_log,
        incremental=incremental,
    )
    result = RapidsResult(
        mode=mode,
        optimize=opt,
        coverage_percent=coverage,
        max_supergate_inputs=max_inputs,
        redundancies=redundancies,
        perturbation=perturbation(placement_before, placement),
    )
    if reference is not None:
        result.equivalent = networks_equivalent(reference, network)
    return result
