"""RAPIDS: Rewiring After Placement usIng easily Detectable Symmetries.

The paper's prototype tool, reimplemented.  Three optimization modes
mirror Section 6:

* ``gsg``    — supergate-based rewiring only: each non-trivial
  supergate's legal pin swaps are its "library implementations";
* ``gs``     — Coudert gate sizing only, every mapped gate a site;
* ``gsg_gs`` — the combination: rewiring for gates covered by
  non-trivial supergates, sizing for gates covered only by trivial
  ones (minimum perturbation of the placement).

All modes run the same two-phase min-slack / relaxation loop from
``repro.sizing``; the placement is never modified (new inverters adopt
their sink's location).

Supergate extraction results persist at two granularities: the
:class:`SupergateCache` keeps one partition incrementally fresh across
optimizer rounds on a live network, and the process-wide
:data:`SUPERGATE_STORE` shares finished partitions *across* networks
with identical logic content (the three Table-1 modes, presize/final
runs) keyed by a ``PYTHONHASHSEED``-independent content hash that
ignores cell bindings.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field

from ..library.cells import Library
from ..network import events
from ..network.netlist import Network
from ..place.placement import Placement, perturbation
from ..sizing.coudert import OptimizeResult, Site, optimize
from ..sizing.moves import resize_sites
from ..symmetry.coloring import DedupStats, extract_supergates_colored
from ..symmetry.redundancy import find_easy_redundancies, redundancy_counts
from ..symmetry.supergate import (
    SupergateNetwork,
    extract_supergates,
    grow_supergate,
)
from ..timing.sta import TimingEngine
from ..verify.equiv import networks_equivalent
from .moves import swap_sites

MODES = ("gsg", "gs", "gsg_gs")


def network_content_hash(network: Network) -> str:
    """Stable digest of the network's *logic structure*.

    Covers IO ordering, gate types and fanin wiring — everything
    supergate extraction depends on — and deliberately excludes cell
    bindings (sizing a gate never moves a supergate boundary) and the
    mutable version counter.  ``hashlib`` keeps the digest independent
    of ``PYTHONHASHSEED``.
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update("|".join(network.inputs).encode())
    digest.update(b"\x00")
    digest.update("|".join(network.outputs).encode())
    for name in sorted(network.gate_names()):
        gate = network.gate(name)
        digest.update(
            f"\x00{name}\x01{gate.gtype.value}\x01{','.join(gate.fanins)}"
            .encode()
        )
    return digest.hexdigest()


class PersistentSupergateStore:
    """Content-addressed supergate partitions, shared across runs.

    The three Table-1 modes (and the presize/final pair) each start
    from a *copy* of the same prepared network, so every `run_rapids`
    call used to pay a full extraction for an identical structure.
    The store keys finished partitions by :func:`network_content_hash`
    and re-binds them to whichever network object asks next; cell
    rebinding (pure sizing) leaves the hash — and the partition —
    untouched.  Entries hold plain dict snapshots (``Supergate``
    objects are immutable after extraction), so attaching is a cheap
    dict copy instead of an O(pins) re-growth.
    """

    def __init__(self, max_entries: int = 16) -> None:
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        #: intra-extraction dedup accounting: grown = one growth per
        #: shape class, grafted = template replays, aggregated over
        #: every :meth:`get_or_extract` miss
        self.dedup = DedupStats()
        self._entries: "OrderedDict[str, tuple[dict, dict]]" = OrderedDict()

    def fetch(
        self, network: Network, key: str | None = None
    ) -> SupergateNetwork | None:
        """Partition for *network*'s current content, or ``None``."""
        if key is None:
            key = network_content_hash(network)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        supergates, owner = entry
        return SupergateNetwork(
            network=network,
            supergates=dict(supergates),
            owner=dict(owner),
            network_version=network.version,
        )

    def store(
        self,
        network: Network,
        sgn: SupergateNetwork,
        key: str | None = None,
    ) -> None:
        """Snapshot a freshly extracted partition under the content key."""
        if key is None:
            key = network_content_hash(network)
        self._entries[key] = (dict(sgn.supergates), dict(sgn.owner))
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def get_or_extract(self, network: Network) -> SupergateNetwork:
        """Cached partition when the content matches, else extract+store.

        Misses extract through the shape-color dedup path
        (:func:`~repro.symmetry.coloring.extract_supergates_colored`):
        each structurally distinct region is grown once and replayed
        onto every class mate, producing the exact partition a plain
        :func:`~repro.symmetry.supergate.extract_supergates` would —
        the two tiers of sharing compose (across networks by content
        hash here, across regions by shape class inside one pass).
        """
        key = network_content_hash(network)
        sgn = self.fetch(network, key=key)
        if sgn is None:
            sgn = extract_supergates_colored(network, stats=self.dedup)
            self.store(network, sgn, key=key)
        return sgn

    def clear(self) -> None:
        self._entries.clear()


#: Process-wide store: one prepared benchmark is optimized three times
#: (once per mode) plus presized, all from copies with identical logic.
SUPERGATE_STORE = PersistentSupergateStore()


class SupergateCache:
    """Supergate extraction cached across optimizer rounds.

    Subscribes to the network's mutation events; :meth:`get` drops
    only the supergates whose covered gates — or whose boundary nets'
    fanout — were touched since the previous extraction and re-grows
    the freed region, reusing every untouched supergate.  Falls back
    to a full re-extraction when an untracked mutation happens or a
    boundary shifts beyond the tracked region.
    """

    def __init__(self, network: Network) -> None:
        self.network = network
        self.full_extractions = 0
        self.partial_refreshes = 0
        self.store_fetches = 0
        self._sgn: SupergateNetwork | None = None
        self._touched_gates: set[str] = set()
        self._touched_nets: set[str] = set()
        self._removed: set[str] = set()
        self._full = True
        network.subscribe(self)

    def notify_network_event(self, kind: str, data: dict) -> None:
        if kind == events.REPLACE_FANIN:
            self._touched_nets.add(data["old"])
            self._touched_nets.add(data["new"])
            self._touched_gates.add(data["pin"].gate)
        elif kind == events.SWAP_FANINS:
            self._touched_nets.add(data["net_a"])
            self._touched_nets.add(data["net_b"])
            self._touched_gates.add(data["pin_a"].gate)
            self._touched_gates.add(data["pin_b"].gate)
        elif kind == events.ADD_GATE:
            self._removed.discard(data["gate"])
            self._touched_gates.add(data["gate"])
            self._touched_nets.update(data["fanins"])
        elif kind == events.REMOVE_GATE:
            self._removed.add(data["gate"])
            self._touched_gates.discard(data["gate"])
            self._touched_nets.update(data["fanins"])
        elif kind == events.SET_GATE_TYPE:
            # the gate's own net is a growth boundary for its
            # consumers' supergates: a class change (say XOR -> INV)
            # can make it absorbable, so their owners must re-grow
            self._touched_gates.add(data["gate"])
            self._touched_nets.add(data["gate"])
            self._touched_nets.update(data["fanins"])
        elif kind == events.SET_FANINS:
            self._touched_gates.add(data["gate"])
            self._touched_nets.add(data["gate"])
            self._touched_nets.update(data["old"])
            self._touched_nets.update(data["new"])
        elif kind == events.SET_CELL:
            pass  # cell binding does not change supergate structure
        elif kind in (events.ADD_OUTPUT, events.REPLACE_OUTPUT, events.ADD_INPUT):
            # fanout degree counts primary-output use, so coverage
            # boundaries can move when PO bindings change
            for key in ("net", "old", "new"):
                if key in data:
                    self._touched_nets.add(data[key])
        elif kind == events.RESTORE:
            if data["io_changed"]:
                self._full = True
                return
            for name, fanins in data["removed"]:
                self._removed.add(name)
                self._touched_gates.discard(name)
                self._touched_nets.update(fanins)
            for name, fanins in data["added"]:
                self._removed.discard(name)
                self._touched_gates.add(name)
                self._touched_nets.update(fanins)
            for name, old_fanins, new_fanins in data["changed"]:
                self._touched_gates.add(name)
                self._touched_nets.add(name)  # gtype may have changed
                self._touched_nets.update(old_fanins)
                self._touched_nets.update(new_fanins)
        else:
            self._full = True

    def get(self) -> SupergateNetwork:
        """Current supergate partition, refreshed as locally as possible."""
        network = self.network
        if self._sgn is None or self._full:
            return self._extract_full()
        sgn = self._sgn
        if not (self._touched_gates or self._touched_nets or self._removed):
            sgn.network_version = network.version
            return sgn
        # gates whose coverage may have changed: the touched gates, the
        # drivers and the consumers of every touched net (the net's
        # fanout degree gates supergate growth across it)
        seeds: set[str] = set()
        for gate in self._touched_gates:
            if gate in network and not network.is_input(gate):
                seeds.add(gate)
        for net in self._touched_nets:
            if net not in network:
                continue
            if not network.is_input(net):
                seeds.add(net)
            for pin in network.fanout(net):
                seeds.add(pin.gate)
        invalid_roots: set[str] = set()
        region: set[str] = set()
        for gate in seeds:
            root = sgn.owner.get(gate)
            if root is None:
                region.add(gate)  # new gate, never covered
            else:
                invalid_roots.add(root)
        for name in self._removed:
            root = sgn.owner.get(name)
            if root is not None:
                invalid_roots.add(root)
        for root in invalid_roots:
            sg = sgn.supergates.pop(root, None)
            if sg is None:
                continue
            for gate in sg.covered:
                if sgn.owner.get(gate) == root:
                    del sgn.owner[gate]
                if gate in network:
                    region.add(gate)
        for name in self._removed:
            sgn.owner.pop(name, None)
            sgn.supergates.pop(name, None)
            region.discard(name)
        for name in reversed(network.topo_order()):
            if name not in region or name in sgn.owner:
                continue
            sg = grow_supergate(network, name)
            for covered_name in sg.covered:
                if sgn.owner.get(covered_name) is not None:
                    # growth crossed into a supergate we considered
                    # valid: the tracked region under-approximated the
                    # change — rebuild everything
                    return self._extract_full()
            for covered_name in sg.covered:
                sgn.owner[covered_name] = name
            sgn.supergates[name] = sg
        sgn.network_version = network.version
        self._reset_dirty()
        self.partial_refreshes += 1
        return sgn

    def _extract_full(self) -> SupergateNetwork:
        # fetch-only: a hit reuses the prepared network's partition
        # (first factory call of every mode), but mid-optimization
        # fallback extractions of a mutated trajectory would only
        # pollute the shared LRU with never-again-matching snapshots,
        # so storing stays with run_rapids / prepare_benchmark
        sgn = SUPERGATE_STORE.fetch(self.network)
        if sgn is None:
            sgn = extract_supergates(self.network)
            self.full_extractions += 1
        else:
            self.store_fetches += 1
        self._sgn = sgn
        self._reset_dirty()
        return self._sgn

    def _reset_dirty(self) -> None:
        self._touched_gates.clear()
        self._touched_nets.clear()
        self._removed.clear()
        self._full = False


@dataclass
class RapidsResult:
    """Everything one Table 1 row needs, for one mode."""

    mode: str
    optimize: OptimizeResult
    coverage_percent: float
    max_supergate_inputs: int
    redundancies: int
    perturbation: dict[str, float] = field(default_factory=dict)
    equivalent: bool | None = None
    #: Section-5 wirelength polish outcome (None unless wl_passes > 0).
    wirelength: "WirelengthResult | None" = None

    @property
    def improvement_percent(self) -> float:
        return self.optimize.improvement_percent

    @property
    def area_delta_percent(self) -> float:
        return self.optimize.area_delta_percent

    @property
    def runtime_seconds(self) -> float:
        return self.optimize.runtime_seconds


def _cached_sgn(slot: list[SupergateCache | None], network: Network):
    """Supergate partition for *network* through a one-slot cache.

    The optimizer calls its site factory on the same live network
    every round; the identity check guards against a caller reusing
    one factory across designs.
    """
    cache = slot[0]
    if cache is None or cache.network is not network:
        cache = SupergateCache(network)
        slot[0] = cache
    return cache.get()


def _gsg_factory(library: Library, include_inverting: bool = True):
    slot: list[SupergateCache | None] = [None]

    def factory(network: Network, engine: TimingEngine) -> list[Site]:
        sgn = _cached_sgn(slot, network)
        return swap_sites(
            network, engine, sgn, include_inverting=include_inverting
        )

    return factory


def _gs_factory(library: Library):
    def factory(network: Network, engine: TimingEngine) -> list[Site]:
        return resize_sites(network, library)

    return factory


def _gsg_gs_factory(library: Library):
    slot: list[SupergateCache | None] = [None]

    def factory(network: Network, engine: TimingEngine) -> list[Site]:
        sgn = _cached_sgn(slot, network)
        sites = swap_sites(network, engine, sgn)
        nontrivial_gates = {
            name
            for sg in sgn.nontrivial()
            for name in sg.covered
        }
        sites.extend(
            resize_sites(
                network,
                library,
                gate_filter=lambda name: name not in nontrivial_gates,
            )
        )
        return sites

    return factory


def run_rapids(
    network: Network,
    placement: Placement,
    library: Library,
    mode: str = "gsg_gs",
    max_rounds: int = 12,
    batch_limit: "int | str" = 64,
    check_equivalence: bool = False,
    collect_log: bool = False,
    incremental: bool = True,
    sim_backend: str = "auto",
    workers: int = 1,
    wl_passes: int = 0,
    wl_batched: bool = True,
    wl_timing_aware: bool = True,
    wl_slack_margin: float = 0.0,
    wl_class_swaps: bool = False,
    partition: bool = False,
    partition_max_gates: int = 2500,
    checkpoint: str | None = None,
    resume: bool = False,
    checkpoint_every: int = 1,
) -> RapidsResult:
    """Optimize a placed mapped network in place; returns the report.

    With ``check_equivalence`` the optimized network is verified
    functionally identical to the input (always on in the test suite;
    optional in benchmarks for speed); *sim_backend* picks the
    simulation backend that verification sweep runs on (``"auto"``
    resolves per sweep shape, see ``repro.logic.simcore.backends``).
    *workers* > 1 shards candidate-gain evaluation across processes
    with a serial-identical trajectory (see :mod:`repro.parallel`).
    *batch_limit* is the per-batch commit cap, or ``"auto"`` for the
    adaptive policy (:class:`repro.sizing.coudert.BatchPolicy`) that
    widens batches while each one dirties most of the network.
    *wl_passes* > 0 appends that many Section-5 wirelength-rewiring
    passes after timing optimization (placement still untouched);
    *wl_batched* selects the vectorized conflict-free path over the
    serial greedy reference (see :mod:`repro.rapids.wirelength`).
    With *wl_timing_aware* (the default) those passes gate every
    accepted swap on a projected-slack guard band of *wl_slack_margin*
    ns against the post-optimization critical delay, so the polish
    recovers wirelength without giving back the delay the sizing
    passes just bought; ``wl_timing_aware=False`` restores the
    timing-blind HPWL-only objective.
    With *wl_class_swaps* the batched polish additionally considers
    cross-supergate candidates from whole-netlist symmetry coloring
    (:mod:`repro.symmetry.coloring`): pins reading structurally
    identical nets, each verified by simulation before it may enter a
    batch.  Off by default — trajectories and fingerprints are
    unchanged unless the knob is enabled.
    With *partition* the polish runs region-bounded: the placed
    netlist is FM-carved into regions of at most
    *partition_max_gates* gates with frozen boundary nets, regions
    are selected independently (concurrently when ``workers > 1``)
    and committed through the serial conflict-free committer — same
    semantics restricted to intra-region moves, scaling the polish to
    1e5+ gates (see :mod:`repro.rapids.partition`; implies the
    batched path).
    With *checkpoint* a :class:`repro.checkpoint.CheckpointManager`
    saves resume state to that path every *checkpoint_every*-th flow
    boundary (optimization rounds, partitioned-rewiring rounds, stage
    handoffs) and always when a SIGTERM arrived, then unwinds with
    :class:`~repro.checkpoint.RunInterrupted`.  *resume* reloads the
    checkpoint and re-enters the interrupted stage at the saved
    cursor; the resumed run must be given the same inputs and flow
    knobs, and then finishes with a trajectory — and final
    fingerprint — bit-identical to an uninterrupted run (missing or
    unreadable checkpoints fall back to a fresh run).
    """
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r}; pick one of {MODES}")
    manager = None
    resume_payload = None
    stage = None
    if checkpoint is not None:
        from ..checkpoint import CheckpointManager

        manager = CheckpointManager(checkpoint, every=checkpoint_every)
        if resume:
            resume_payload = manager.load()
            if resume_payload is not None:
                stage = resume_payload["stage"]
        manager.install()
    try:
        # pre-flight metrics run on the pristine input even when
        # resuming (the saved state is grafted only afterwards), so a
        # resumed report matches the uninterrupted one field for field
        reference = network.copy() if check_equivalence else None
        placement_before = placement.copy()
        sgn = SUPERGATE_STORE.get_or_extract(network)
        coverage = sgn.coverage() * 100.0
        max_inputs = sgn.max_supergate_inputs()
        redundancies = redundancy_counts(
            find_easy_redundancies(network, sgn)
        )["events"]
        if stage == "done":
            from ..checkpoint import graft_state, unpack_eval_state

            graft_state(
                unpack_eval_state(resume_payload["final_state"]),
                network, placement,
            )
            result = resume_payload["result"]
            if reference is not None:
                result.equivalent = networks_equivalent(
                    reference, network, backend=sim_backend
                )
            return result
        if mode == "gsg":
            factory = _gsg_factory(library)
        elif mode == "gs":
            factory = _gs_factory(library)
        else:
            factory = _gsg_gs_factory(library)
        if stage in ("wl", "wl_partition"):
            opt = resume_payload["opt"]
            if stage == "wl":
                from ..checkpoint import graft_state, unpack_eval_state

                graft_state(
                    unpack_eval_state(resume_payload["run_state"]),
                    network, placement,
                )
        else:
            opt = optimize(
                network,
                placement,
                library,
                site_factory=factory,
                mode=mode,
                max_rounds=max_rounds,
                batch_limit=batch_limit,
                collect_log=collect_log,
                incremental=incremental,
                workers=workers,
                checkpoint=manager,
                resume_data=(
                    resume_payload if stage == "optimize" else None
                ),
            )
        if manager is not None:
            from ..checkpoint import pack_network

            # every later payload carries the finished optimization
            # result via the manager context; the forced boundary also
            # converts a SIGTERM that landed after the optimizer's
            # last round into a clean stage handoff
            manager.context = {"opt": opt}
            if stage not in ("wl", "wl_partition"):
                manager.boundary(
                    "wl",
                    lambda: {"run_state": pack_network(network, placement)},
                    force=True,
                )
        wirelength = None
        if wl_passes > 0:
            from .wirelength import reduce_wirelength

            wl_timing = None
            if stage == "wl_partition":
                from ..checkpoint import (
                    engine_from_state,
                    graft_state,
                    unpack_eval_state,
                )

                state = unpack_eval_state(resume_payload["engine_state"])
                if resume_payload["timing_aware"]:
                    wl_timing = engine_from_state(
                        state, network, placement, library
                    )
                else:
                    graft_state(state, network, placement)
            elif wl_timing_aware:
                # the guard band is measured against the delay the
                # optimizer just achieved: the gate's engine pins its
                # target to this analysis' critical path
                wl_timing = TimingEngine(network, placement, library)
                wl_timing.analyze()
            if partition:
                from .partition import reduce_wirelength_partitioned

                wirelength = reduce_wirelength_partitioned(
                    network, placement, max_gates=partition_max_gates,
                    max_passes=wl_passes, timing_engine=wl_timing,
                    slack_margin=wl_slack_margin, workers=workers,
                    library=library,
                    class_swaps=wl_class_swaps,
                    checkpoint=manager,
                    resume_data=(
                        resume_payload if stage == "wl_partition" else None
                    ),
                )
            else:
                wirelength = reduce_wirelength(
                    network, placement, max_passes=wl_passes,
                    batched=wl_batched, timing_engine=wl_timing,
                    slack_margin=wl_slack_margin,
                    class_swaps=wl_class_swaps,
                )
            if (
                wirelength.swaps_applied
                or wirelength.cross_swaps_applied
                or wirelength.class_swaps_applied
            ):
                # the polish rewired nets after the optimizer's last
                # STA: re-time so the reported delay describes the
                # returned netlist (area is untouched — these moves add
                # no cells).  The guard engine already tracked every
                # commit incrementally (incremental == fresh to 1e-9),
                # so only the timing-blind path needs a from-scratch
                # analysis.
                if wl_timing is not None:
                    wl_timing.refresh()
                    opt.final_delay = wl_timing.max_delay
                else:
                    final_engine = TimingEngine(network, placement, library)
                    final_engine.analyze()
                    opt.final_delay = final_engine.max_delay
        result = RapidsResult(
            mode=mode,
            optimize=opt,
            coverage_percent=coverage,
            max_supergate_inputs=max_inputs,
            redundancies=redundancies,
            perturbation=perturbation(placement_before, placement),
            wirelength=wirelength,
        )
        if reference is not None:
            result.equivalent = networks_equivalent(
                reference, network, backend=sim_backend
            )
        if manager is not None:
            from ..checkpoint import pack_network

            # a completed run checkpoints its own result: resuming a
            # finished checkpoint grafts the final netlist and returns
            # the saved report instead of redoing any work
            manager.context = {}
            manager.save({
                "stage": "done",
                "result": result,
                "final_state": pack_network(network, placement),
            })
        return result
    finally:
        if manager is not None:
            manager.uninstall()
