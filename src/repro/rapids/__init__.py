"""RAPIDS post-placement optimizer (the paper's prototype tool)."""

from .engine import MODES, RapidsResult, run_rapids
from .moves import SwapMove, bind_new_inverters, swap_sites
from .fanout import FanoutResult, buffer_net, heavy_nets, optimize_fanout
from .wirelength import WirelengthResult, reduce_wirelength, swap_hpwl_delta
from .report import (
    Table1Row,
    area_of,
    averages,
    build_row,
    fanout_profile,
)

__all__ = [
    "MODES",
    "RapidsResult",
    "SwapMove",
    "Table1Row",
    "area_of",
    "averages",
    "bind_new_inverters",
    "build_row",
    "fanout_profile",
    "run_rapids",
    "swap_sites",
    "swap_hpwl_delta",
    "reduce_wirelength",
    "WirelengthResult",
    "FanoutResult",
    "buffer_net",
    "heavy_nets",
    "optimize_fanout",
]
