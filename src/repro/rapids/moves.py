"""Rewiring moves: supergate pin swaps packaged for the optimizer.

Pricing contract: :meth:`SwapMove.gains` is *projection-only* — it
rides :meth:`~repro.timing.sta.TimingEngine.swap_gain`, which rebuilds
the two affected stars with sinks exchanged off the cached analysis
and never mutates the network, so candidate evaluation fires zero
mutation events (the wirelength path honors the same contract through
:mod:`repro.place.hpwl`); ``apply`` is the only mutating entry.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..contracts import projection_only
from ..library.cells import Library
from ..network.gatetype import GateType
from ..network.netlist import Network
from ..sizing.coudert import Site
from ..symmetry.supergate import Supergate, SupergateNetwork
from ..symmetry.swap import PinSwap, apply_swap, enumerate_swaps
from ..timing.sta import Gains, TimingEngine

#: Opt-in to the determinism lint (rule D of ``python -m tools.lint``):
#: this module's float accumulations and tie-breaks must never follow
#: set-iteration (= PYTHONHASHSEED) order.
__deterministic__ = True

#: Per-supergate cap on evaluated swap candidates; beyond this, pairs
#: are restricted to the most timing-critical pins.
MAX_MOVES_PER_SITE = 80


@dataclass(frozen=True)
class SwapMove:
    """Exchange the drivers of two symmetric pins (Definition 3)."""

    swap: PinSwap

    @projection_only
    def gains(self, engine: TimingEngine) -> Gains:
        return engine.swap_gain(self.swap)

    def footprint(self, network: Network) -> set[str]:
        return self.swap.footprint(network)

    def apply(self, network: Network, library: Library) -> None:
        before = len(network)
        apply_swap(network, self.swap)
        added = len(network) - before
        if added > 0:
            bind_new_inverters(network, library, network.recent_gates(added))

    def area_delta(self, library: Library) -> float:
        if not self.swap.inverting:
            return 0.0
        inv = library.implementations(GateType.INV, 1)[0]
        return 2.0 * inv.area  # upper bound: both legs need an inverter

    def describe(self) -> str:
        kind = "inv-swap" if self.swap.inverting else "swap"
        return f"{kind} {self.swap.pin_a}<->{self.swap.pin_b}"


def bind_new_inverters(
    network: Network, library: Library, names: list[str]
) -> None:
    """Bind freshly created INV/BUF gates to the smallest library cell."""
    for name in names:
        gate = network.gate(name)
        if gate.cell is not None:
            continue
        if gate.gtype in (GateType.INV, GateType.BUF):
            network.set_cell(
                name, library.implementations(gate.gtype, 1)[0].name
            )


def swap_sites(
    network: Network,
    engine: TimingEngine,
    sgn: SupergateNetwork,
    include_internal: bool = True,
    include_inverting: bool = True,
) -> list[Site]:
    """One site per non-trivial supergate, moves = its legal pin swaps."""
    sites: list[Site] = []
    for sg in sgn.nontrivial():
        moves = [
            SwapMove(swap)
            for swap in _bounded_swaps(
                sg, engine, include_internal, include_inverting
            )
        ]
        if moves:
            sites.append(Site(key=f"sg:{sg.root}", moves=moves))
    return sites


def _bounded_swaps(
    sg: Supergate,
    engine: TimingEngine,
    include_internal: bool,
    include_inverting: bool,
) -> list[PinSwap]:
    """Swap candidates of one supergate, capped for very wide supergates.

    When the full pair enumeration exceeds :data:`MAX_MOVES_PER_SITE`,
    only pairs touching the supergate's most critical pins (smallest
    slack on the driving net) are evaluated — critical pins are where
    rewiring gains live.
    """
    all_swaps = list(
        enumerate_swaps(
            sg,
            leaves_only=not include_internal,
            include_inverting=include_inverting,
        )
    )
    if len(all_swaps) <= MAX_MOVES_PER_SITE:
        return all_swaps

    def pin_slack(pin) -> float:
        net = engine.network.fanin_net(pin)
        return engine.slack.get(net, 0.0)

    # the pin itself tie-breaks equal slacks: a bare float key would
    # leave ties in set-iteration (= PYTHONHASHSEED) order and the [:8]
    # cutoff would then pick different pins per process
    critical: list = sorted(
        {swap.pin_a for swap in all_swaps}
        | {swap.pin_b for swap in all_swaps},
        key=lambda pin: (pin_slack(pin), pin),
    )[:8]
    critical_set = set(critical)
    bounded = [
        swap for swap in all_swaps
        if swap.pin_a in critical_set or swap.pin_b in critical_set
    ]
    return bounded[:MAX_MOVES_PER_SITE]
