"""Partitioned wirelength rewiring: FM-carved regions, frozen boundaries.

Monolithic batched rewiring (:mod:`repro.rapids.wirelength`) enumerates
and scores the whole netlist's candidate set every iteration — fine to
a few thousand gates, hopeless at 1e5-1e6.  This module makes the flow
divide-and-conquer:

1. **Carve once.**  :func:`repro.place.regions.carve_regions` bisects
   the placed netlist (geometry-seeded FM) into regions of at most
   ``max_gates`` gates.  Nets spanning regions are *boundary* nets.
2. **Freeze boundaries.**  A candidate is admissible only when every
   net it rebinds is internal to a single region — boundary candidates
   are dropped at enumeration, so cross-region moves are never even
   proposed and boundary pin bindings survive the run untouched.
   Internality is invariant under intra-region moves (see
   :mod:`repro.place.regions`), so the carve stays truthful forever.
3. **Select per region, against round-start state.**  Each round runs
   the shared read-only selector
   (:func:`repro.rapids.wirelength._select_batch`) over every region's
   candidates.  Selection mutates nothing, so regions may be evaluated
   in any order — or concurrently on ``EvalPool`` workers against
   ``soa_full`` shared-memory snapshots
   (:mod:`repro.parallel.regions`) — and produce bit-identical
   selections.
4. **Commit serially, in region order.**  The parent replays accepted
   moves region by region.  HPWL footprints of different regions are
   disjoint by construction (all internal nets); timing ``touched``
   neighborhoods are *not* (timing cones cross boundaries), so the
   committer keeps a global claimed-net set and defers any move whose
   exact projection overlaps an earlier region's — deferred moves are
   re-scored next round against the refreshed state.  One timing
   refold per round.

Determinism: the carve, the per-region candidate order, the selection
and the region-ordered commit are all ``PYTHONHASHSEED``-independent
and worker-count-invariant, so the trajectory is bit-identical for
every ``workers`` value — and, with one region, bit-identical to the
unpartitioned batched path (both properties are locked by
``tests/test_partitioned_rewiring.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..network.netlist import Network, Pin
from ..place.hpwl import WirelengthEngine
from ..place.placement import Placement
from ..place.regions import RegionSet, carve_regions
from ..timing.sta import TimingEngine
from .wirelength import (
    WirelengthResult,
    _TimingGate,
    _apply_batch,
    _attach_timing_stats,
    _leaf_pairs,
    _pure_crosses,
    _select_batch,
    verified_class_swaps,
)

#: Opt-in to the determinism lint (rule D of ``python -m tools.lint``).
__deterministic__ = True


@dataclass
class PartitionedResult(WirelengthResult):
    """Outcome of a partitioned run (extends the monolithic report)."""

    #: Regions the carve produced / largest region / frozen nets.
    regions: int = 0
    max_region_gates: int = 0
    boundary_nets: int = 0
    #: Select+commit rounds executed across all passes.
    rounds: int = 0
    #: Moves deferred because their timing neighborhood crossed into
    #: an earlier region's claim this round (re-scored next round).
    deferred_timing_conflicts: int = 0
    #: Moves dropped for overlapping HPWL footprints across regions —
    #: impossible under the frozen-boundary contract; must stay 0.
    boundary_conflicts: int = 0
    #: Parallelism actually achieved (see repro.parallel.regions).
    workers: int = 1
    parallel_rounds: int = 0
    fallback_reason: str | None = None
    #: Recovery-ladder counters of the session's pool (empty when the
    #: run was serial); see :class:`repro.parallel.pool.PoolHealth`.
    health: dict = field(default_factory=dict)


def _region_tasks(
    network: Network,
    regions: RegionSet,
    pairs,
    crosses,
    klass=(),
) -> list[tuple[int, list, list, list]]:
    """Group candidates by region, dropping boundary candidates.

    A leaf pair is admissible iff both driving nets are internal to
    the same region (their sink gates then are too); a cross exchange
    iff every net its bindings read or write is; a coloring class swap
    iff its whole cone-wide footprint is.  Returns one
    ``(region_index, pairs, crosses, klass)`` task per region with any
    admissible candidate, ordered by region index.
    """
    net_region = regions.net_region
    by_region: dict[int, tuple[list, list, list]] = {}
    for root, pin_a, pin_b in pairs:
        home = net_region.get(network.fanin_net(pin_a))
        if home is None or net_region.get(network.fanin_net(pin_b)) != home:
            continue
        by_region.setdefault(
            home, ([], [], [])
        )[0].append((root, pin_a, pin_b))
    for cross, bindings in crosses:
        nets = {network.fanin_net(pin) for pin, _ in bindings}
        nets.update(net for _, net in bindings)
        homes = {net_region.get(net) for net in nets}
        if len(homes) != 1 or None in homes:
            continue
        by_region.setdefault(
            next(iter(homes)), ([], [], [])
        )[1].append((cross, bindings))
    for pin_a, pin_b, footprint in klass:
        homes = {net_region.get(net) for net in footprint}
        if len(homes) != 1 or None in homes:
            continue
        by_region.setdefault(
            next(iter(homes)), ([], [], [])
        )[2].append((pin_a, pin_b, footprint))
    return [
        (index, task[0], task[1], task[2])
        for index, task in sorted(by_region.items())
    ]


def reduce_wirelength_partitioned(
    network: Network,
    placement: Placement,
    max_gates: int = 2500,
    max_passes: int = 4,
    min_gain: float = 1e-9,
    include_cross: bool = True,
    class_swaps: bool = False,
    timing_engine: TimingEngine | None = None,
    slack_margin: float = 0.0,
    workers: int = 1,
    library=None,
    balance: float = 0.55,
    refine_passes: int = 3,
    carve_seed: int = 0,
    checkpoint=None,
    resume_data: dict | None = None,
) -> PartitionedResult:
    """Region-bounded wirelength rewiring (see module docstring).

    Semantics match :func:`repro.rapids.wirelength.reduce_wirelength`
    (batched path) restricted to moves internal to one carved region;
    with *max_gates* >= the gate count the restriction vanishes and
    the trajectory is bit-identical to the monolithic path.  With
    *timing_engine* every commit is slack-guarded exactly as there.
    *class_swaps* admits coloring-derived cross-supergate candidates
    (see :func:`repro.rapids.wirelength.verified_class_swaps`) on each
    pass's first round, restricted to candidates whose entire
    cone-wide footprint is internal to one region.

    *workers* > 1 evaluates regions concurrently on ``EvalPool``
    processes; snapshots ship through the engine passed as
    *timing_engine* or, on the timing-blind objective, one built from
    *library* — without either, evaluation silently stays inline and
    the result records ``fallback_reason``.  The committed trajectory
    is identical for every worker count.

    *checkpoint* (a :class:`repro.checkpoint.CheckpointManager`) saves
    a ``"wl_partition"`` cursor after every applied round.  To resume,
    the caller grafts the saved state back into *network* /
    *placement* / *timing_engine* first (see
    :func:`repro.checkpoint.graft_state` /
    :func:`~repro.checkpoint.engine_from_state`) and passes the loaded
    payload as *resume_data*; the run re-enters the interrupted pass
    mid-flight — resumed rounds are leaf-pair-only by construction
    (cross exchanges ride only a pass's first round) — with the saved
    carve, counters and slack-gate statistics, and finishes
    bit-identically to the uninterrupted run.
    """
    from .engine import SupergateCache

    resuming = resume_data is not None
    placement.ensure_covered(network)
    engine = WirelengthEngine(network, placement)
    gate = (
        _TimingGate(timing_engine, slack_margin)
        if timing_engine is not None else None
    )
    cache = SupergateCache(network)
    if resuming:
        # the carve is geometry-seeded on the *initial* netlist; the
        # resumed (rewired) netlist could carve differently, so the
        # original RegionSet rides in the checkpoint
        regions = resume_data["regions"]
    else:
        regions = carve_regions(
            network, placement, max_gates, balance=balance,
            refine_passes=refine_passes, seed=carve_seed,
        )
    session = None
    fallback_reason = None
    if workers > 1:
        carrier = gate.engine if gate is not None else None
        if carrier is None and library is not None:
            carrier = TimingEngine(network, placement, library)
            carrier.analyze()
        if carrier is None:
            fallback_reason = "no timing engine or library for snapshots"
        else:
            from ..parallel.regions import RegionEvalSession

            session = RegionEvalSession(
                workers, carrier,
                timing_aware=gate is not None, margin=slack_margin,
                min_gain=min_gain, gate=gate,
            )

    initial = engine.total_hpwl()
    leaf_applied = 0
    cross_applied = 0
    klass_applied = 0
    klass_verified = 0
    klass_rejected = 0
    passes = 0
    rounds = 0
    parallel_rounds = 0
    deferred = 0
    boundary_conflicts = 0
    health: dict = {}
    scored_before = engine.candidates_scored
    remote_scored = 0
    pass_applied = 0
    tasks: list[tuple[int, list, list, list]] = []
    if resuming:
        initial = resume_data["initial_hpwl"]
        leaf_applied = resume_data["leaf_applied"]
        cross_applied = resume_data["cross_applied"]
        klass_applied = resume_data.get("klass_applied", 0)
        klass_verified = resume_data.get("klass_verified", 0)
        klass_rejected = resume_data.get("klass_rejected", 0)
        passes = resume_data["passes"]
        rounds = resume_data["rounds"]
        parallel_rounds = resume_data["parallel_rounds"]
        deferred = resume_data["deferred"]
        boundary_conflicts = resume_data["boundary_conflicts"]
        pass_applied = resume_data["pass_applied"]
        remote_scored = resume_data["remote_scored"]
        scored_before = engine.candidates_scored - resume_data["local_scored"]
        tasks = [
            (index, list(task_pairs), [], [])
            for index, task_pairs in resume_data["tasks_pairs"]
        ]
        if gate is not None and resume_data["gate_stats"] is not None:
            stats = resume_data["gate_stats"]
            gate.rejected_keys = {tuple(key) for key in stats["rejected"]}
            gate.max_drift = stats["max_drift"]
            gate.repricings = stats["repricings"]

    def select_inline(task):
        _index, pairs, crosses, klass = task
        return _select_batch(
            network, engine, pairs, crosses, klass, min_gain, gate
        )

    def cursor() -> dict:
        """Round-boundary resume payload (see the *checkpoint* doc)."""
        from ..checkpoint import pack_eval_state, pack_network

        return {
            "regions": regions,
            "initial_hpwl": initial,
            "leaf_applied": leaf_applied,
            "cross_applied": cross_applied,
            "klass_applied": klass_applied,
            "klass_verified": klass_verified,
            "klass_rejected": klass_rejected,
            "passes": passes,
            "rounds": rounds,
            "parallel_rounds": parallel_rounds,
            "deferred": deferred,
            "boundary_conflicts": boundary_conflicts,
            "pass_applied": pass_applied,
            "remote_scored": remote_scored,
            "local_scored": engine.candidates_scored - scored_before,
            "tasks_pairs": [
                (index, list(task_pairs))
                for index, task_pairs, _crosses, _klass in tasks
            ],
            "gate_stats": None if gate is None else {
                "rejected": sorted(gate.rejected_keys),
                "max_drift": gate.max_drift,
                "repricings": gate.repricings,
            },
            "timing_aware": gate is not None,
            "engine_state": (
                pack_eval_state(gate.engine.export_eval_state())
                if gate is not None
                else pack_network(network, placement)
            ),
        }

    try:
        mid_pass = resuming
        while passes < max_passes or mid_pass:
            if mid_pass:
                mid_pass = False
                sgn = cache.get()
                first_round = False
            else:
                passes += 1
                sgn = cache.get()
                pairs = _leaf_pairs(sgn, network)
                crosses = _pure_crosses(sgn) if include_cross else []
                klass: list = []
                if class_swaps:
                    # class candidates are re-verified (by simulation)
                    # every pass against the current netlist
                    klass, rejected = verified_class_swaps(network)
                    klass_verified += len(klass)
                    klass_rejected += rejected
                tasks = _region_tasks(
                    network, regions, pairs, crosses, klass
                )
                pass_applied = 0
                first_round = True
            while True:
                rounds += 1
                round_tasks = tasks if first_round else [
                    (index, task_pairs, [], [])
                    for index, task_pairs, _crosses, _klass in tasks
                ]
                first_round = False
                if session is not None and session.active:
                    selections, scored = session.select_round(
                        round_tasks, select_inline
                    )
                    remote_scored += scored
                    if session.parallel_last_round:
                        parallel_rounds += 1
                else:
                    selections = [
                        select_inline(task) for task in round_tasks
                    ]
                # serial conflict-free commit, in region order: HPWL
                # footprints cannot collide across regions (internal
                # nets only — counted defensively all the same); exact
                # timing neighborhoods can, so later regions defer
                claimed_nets: set[str] = set()
                claimed_timing: set[str] = set()
                committed_projections: list = []
                leaves = crossings = klasses = 0
                for (_index, _p, _c, _k), accepted in zip(
                    round_tasks, selections
                ):
                    kept = []
                    for kind, payload, projection, footprint in accepted:
                        if footprint & claimed_nets:
                            boundary_conflicts += 1
                            continue
                        if projection is not None and (
                            projection.touched & claimed_timing
                        ):
                            deferred += 1
                            continue
                        kept.append((kind, payload, projection, footprint))
                        claimed_nets |= footprint
                        if projection is not None:
                            claimed_timing |= projection.touched
                            committed_projections.append(projection)
                    batch_leaves, batch_crosses, batch_klass = _apply_batch(
                        network, sgn, kept
                    )
                    leaves += batch_leaves
                    crossings += batch_crosses
                    klasses += batch_klass
                if gate is not None and committed_projections:
                    gate.refold(committed_projections)
                leaf_applied += leaves
                cross_applied += crossings
                klass_applied += klasses
                pass_applied += leaves + crossings + klasses
                if leaves + crossings + klasses == 0:
                    break
                if checkpoint is not None:
                    checkpoint.boundary("wl_partition", cursor)
            if pass_applied == 0:
                break
    finally:
        if session is not None:
            if fallback_reason is None:
                fallback_reason = session.fallback_reason
            health = session.pool.health.as_dict()
            session.close()

    result = PartitionedResult(
        initial_hpwl=initial,
        final_hpwl=engine.total_hpwl(),
        swaps_applied=leaf_applied,
        passes=passes,
        mode="partitioned",
        cross_swaps_applied=cross_applied,
        class_swaps_applied=klass_applied,
        class_candidates_verified=klass_verified,
        class_candidates_rejected=klass_rejected,
        candidates_scored=(
            engine.candidates_scored - scored_before + remote_scored
        ),
        regions=len(regions.regions),
        max_region_gates=regions.max_region_gates,
        boundary_nets=len(regions.boundary_nets),
        rounds=rounds,
        deferred_timing_conflicts=deferred,
        boundary_conflicts=boundary_conflicts,
        workers=workers,
        parallel_rounds=parallel_rounds,
        fallback_reason=fallback_reason,
        health=health,
    )
    _attach_timing_stats(result, gate)
    return result
