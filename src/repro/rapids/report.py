"""Reporting helpers: Table 1 rows, fanout audit, placement perturbation."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..library.cells import Library
from ..network.netlist import Network
from .engine import RapidsResult


@dataclass
class Table1Row:
    """One benchmark's results across the three modes (Table 1 columns)."""

    circuit: str
    gates: int
    initial_delay_ns: float
    gsg_percent: float
    gs_percent: float
    gsg_gs_percent: float
    gsg_cpu: float
    gs_cpu: float
    gsg_gs_cpu: float
    gs_area_percent: float
    gsg_gs_area_percent: float
    coverage_percent: float
    max_supergate_inputs: int
    redundancies: int
    extras: dict[str, float] = field(default_factory=dict)

    HEADER = (
        f"{'ckt':<10}{'gates':>7}{'init':>7}{'gsg%':>7}{'GS%':>7}"
        f"{'g+GS%':>7}{'gsgT':>7}{'GST':>7}{'g+GST':>8}"
        f"{'GSar%':>7}{'g+GSar%':>8}{'cov%':>7}{'L':>5}{'red':>6}"
    )

    def format(self) -> str:
        """Fixed-width row matching the paper's column layout."""
        return (
            f"{self.circuit:<10}{self.gates:>7d}{self.initial_delay_ns:>7.2f}"
            f"{self.gsg_percent:>7.1f}{self.gs_percent:>7.1f}"
            f"{self.gsg_gs_percent:>7.1f}"
            f"{self.gsg_cpu:>7.1f}{self.gs_cpu:>7.1f}{self.gsg_gs_cpu:>8.1f}"
            f"{self.gs_area_percent:>7.1f}{self.gsg_gs_area_percent:>8.1f}"
            f"{self.coverage_percent:>7.1f}{self.max_supergate_inputs:>5d}"
            f"{self.redundancies:>6d}"
        )


def build_row(
    circuit: str,
    gates: int,
    initial_delay: float,
    results: dict[str, RapidsResult],
) -> Table1Row:
    """Assemble a Table 1 row from the three mode results."""
    gsg = results["gsg"]
    gs = results["gs"]
    combo = results["gsg_gs"]
    return Table1Row(
        circuit=circuit,
        gates=gates,
        initial_delay_ns=initial_delay,
        gsg_percent=gsg.improvement_percent,
        gs_percent=gs.improvement_percent,
        gsg_gs_percent=combo.improvement_percent,
        gsg_cpu=gsg.runtime_seconds,
        gs_cpu=gs.runtime_seconds,
        gsg_gs_cpu=combo.runtime_seconds,
        gs_area_percent=gs.area_delta_percent,
        gsg_gs_area_percent=combo.area_delta_percent,
        coverage_percent=combo.coverage_percent,
        max_supergate_inputs=combo.max_supergate_inputs,
        redundancies=combo.redundancies,
    )


def averages(rows: list[Table1Row]) -> dict[str, float]:
    """Suite averages (the paper's bottom line: 3.1 / 5.4 / 9.0 ...)."""
    if not rows:
        return {}
    count = len(rows)
    return {
        "gsg_percent": sum(r.gsg_percent for r in rows) / count,
        "gs_percent": sum(r.gs_percent for r in rows) / count,
        "gsg_gs_percent": sum(r.gsg_gs_percent for r in rows) / count,
        "gs_area_percent": sum(r.gs_area_percent for r in rows) / count,
        "gsg_gs_area_percent": sum(
            r.gsg_gs_area_percent for r in rows
        ) / count,
        "coverage_percent": sum(r.coverage_percent for r in rows) / count,
    }


def fanout_profile(network: Network) -> dict[str, float]:
    """Large-fanout audit (the paper's closing observation in Section 6).

    Reports the maximum fanout and the count of nets with more than 16
    and more than 100 sinks — the paper remarks the SIS mapper "often
    generates very large fanout nets (more than 100 sinks)" on which
    gsg+GS struggles.
    """
    degrees = [
        network.fanout_degree(net)
        for net in network.nets()
    ]
    return {
        "max_fanout": float(max(degrees, default=0)),
        "nets_over_16": float(sum(1 for d in degrees if d > 16)),
        "nets_over_100": float(sum(1 for d in degrees if d > 100)),
    }


def area_of(network: Network, library: Library) -> float:
    """Convenience re-export of mapped area (um^2)."""
    from ..synth.mapper import network_area

    return network_area(network, library)
