"""Coudert-style gate sizing: generic two-phase optimizer + resize moves."""

from .coudert import (
    Move,
    OptimizeResult,
    Site,
    network_delay,
    optimize,
)
from .moves import ResizeMove, resize_sites

__all__ = [
    "Move",
    "OptimizeResult",
    "ResizeMove",
    "Site",
    "network_delay",
    "optimize",
    "resize_sites",
]
