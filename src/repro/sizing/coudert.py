"""Coudert-style two-phase slack optimization (paper reference [2]).

The paper's timing optimizer is "based on the gate sizing heuristics by
Coudert: maximize the minimum slack through iterative neighborhood
search and relaxation".  This module implements that loop generically
over *sites* — a site is any point of the design with a set of
alternative implementations (a gate with its library sizes, or a
supergate with its set of legal pin swaps):

* **phase 1 (min-slack search)**: for every site, pick the alternative
  with the best projected *minimum-slack* gain in its neighborhood;
  sort all sites' best moves and greedily commit a non-overlapping
  batch, then re-run STA.  Repeat until no move helps.
* **phase 2 (relaxation)**: commit moves with the best projected
  *slack-sum* gain, which speeds up the network globally and lets
  phase 1 escape local minima.  Area-saving moves with non-negative
  gain are also taken here (this is where Table 1's area reductions
  come from).

The loop keeps a snapshot of the best (network, placement) seen and
restores it at the end, so results are monotone in the reported metric.

One :class:`~repro.timing.sta.TimingEngine` stays alive across both
phases, all rounds and area recovery: after each committed batch the
engine incrementally re-propagates timing through the affected region
(``engine.apply_and_update``) instead of rebuilding every star net and
re-running full STA.  ``incremental=False`` restores the historical
rebuild-everything behaviour for A/B benchmarking
(``benchmarks/bench_incremental_sta.py``).

With ``workers > 1`` the per-site gain projection of both phases runs
sharded over an :class:`~repro.parallel.EvalPool`: workers score sites
against read-only snapshots of the engine's cached analysis and the
parent merges the selections back in site order, so the trajectory is
bit-identical to serial (``benchmarks/bench_parallel_eval.py`` measures
the speedup, ``tests/test_parallel_eval.py`` locks the equivalence).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Protocol

from ..library.cells import Library
from ..network import events
from ..network.netlist import Network
from ..parallel import EvalPool, best_phase_move
from ..place.placement import Placement
from ..timing.sta import Gains, TimingEngine


#: Adaptive commit-batch bounds (``batch_limit="auto"``).
AUTO_BATCH_START = 64
AUTO_BATCH_MAX = 256
AUTO_GROW_FRACTION = 0.5
AUTO_SHRINK_FRACTION = 0.1


@dataclass
class BatchPolicy:
    """Per-run commit-batch sizing, optionally adaptive.

    With a fixed integer limit this is inert.  In ``"auto"`` mode the
    limit reacts to the previous batch's measured *dirtied fraction*
    (committed footprint union over net count): when one batch dirties
    most of the network, the post-batch timing update costs close to a
    full recompute no matter how many moves rode in it, so doubling the
    batch amortizes that fixed cost; when batches dirty little, the
    limit decays back toward the default so timing stays fresh between
    commits.  Both inputs are deterministic functions of the move
    trajectory, so an ``"auto"`` run is reproducible bit-for-bit (it
    just is not move-for-move identical to a fixed-64 run).
    """

    limit: int
    adaptive: bool = False

    def observe(self, touched: int, nets: int) -> None:
        """Feed one committed batch's footprint-union size back in."""
        if not self.adaptive or nets <= 0:
            return
        fraction = touched / nets
        if fraction > AUTO_GROW_FRACTION:
            self.limit = min(AUTO_BATCH_MAX, self.limit * 2)
        elif fraction < AUTO_SHRINK_FRACTION:
            self.limit = max(AUTO_BATCH_START, self.limit // 2)


def resolve_batch_policy(batch_limit: "int | str") -> BatchPolicy:
    """Policy for a ``batch_limit`` argument (an int or ``"auto"``)."""
    if batch_limit == "auto":
        return BatchPolicy(limit=AUTO_BATCH_START, adaptive=True)
    if isinstance(batch_limit, bool) or not isinstance(batch_limit, int):
        raise ValueError(
            f"batch_limit must be an int or 'auto', got {batch_limit!r}"
        )
    return BatchPolicy(limit=batch_limit)


class Move(Protocol):
    """One alternative implementation of a site."""

    def gains(self, engine: TimingEngine) -> Gains:
        """Projected local slack gains (not mutating)."""

    def footprint(self, network: Network) -> set[str]:
        """Nets whose timing this move touches (for batch independence)."""

    def apply(self, network: Network, library: Library) -> None:
        """Commit the move."""

    def area_delta(self, library: Library) -> float:
        """Cell-area change of the move (um^2)."""

    def describe(self) -> str:
        """Short human-readable label."""


@dataclass
class Site:
    """A decision point with alternative implementations."""

    key: str
    moves: list[Move]


SiteFactory = Callable[[Network, TimingEngine], list[Site]]


@dataclass
class OptimizeResult:
    """Outcome of an optimization run."""

    mode: str
    initial_delay: float
    final_delay: float
    initial_area: float
    final_area: float
    rounds: int = 0
    moves_applied: int = 0
    runtime_seconds: float = 0.0
    move_log: list[str] = field(default_factory=list)
    timing_stats: dict[str, int] = field(default_factory=dict)

    @property
    def improvement_percent(self) -> float:
        """Delay improvement in percent (Table 1 columns 4-6)."""
        if self.initial_delay <= 0:
            return 0.0
        return 100.0 * (
            self.initial_delay - self.final_delay
        ) / self.initial_delay

    @property
    def area_delta_percent(self) -> float:
        """Area change in percent (negative = smaller, columns 10-11)."""
        if self.initial_area <= 0:
            return 0.0
        return 100.0 * (
            self.final_area - self.initial_area
        ) / self.initial_area


def network_delay(
    network: Network, placement: Placement, library: Library
) -> float:
    """Critical-path delay of a placed network (fresh STA)."""
    engine = TimingEngine(network, placement, library)
    engine.analyze()
    return engine.max_delay


def optimize(
    network: Network,
    placement: Placement,
    library: Library,
    site_factory: SiteFactory,
    mode: str = "custom",
    max_rounds: int = 12,
    batch_limit: "int | str" = 64,
    epsilon: float = 1e-9,
    collect_log: bool = False,
    incremental: bool = True,
    workers: int = 1,
    eval_pool: EvalPool | None = None,
    checkpoint=None,
    resume_data: dict | None = None,
) -> OptimizeResult:
    """Run the two-phase loop; mutates *network* (and placement) in place.

    *site_factory* is re-invoked after every committed batch because
    moves can restructure the network (swaps insert inverters).  With
    *incremental* (the default) a single timing engine survives the
    whole run and committed batches propagate through it locally;
    ``incremental=False`` rebuilds a fresh engine after every batch.

    *workers* > 1 shards the per-site candidate-gain projection of both
    phases across worker processes operating on read-only timing
    snapshots (see :mod:`repro.parallel`); the applied-move trajectory
    is bit-identical to the serial run for every worker count.  An
    externally managed *eval_pool* overrides *workers* (callers that
    amortize one pool over several ``optimize`` runs).

    *batch_limit* caps moves per committed batch; the string ``"auto"``
    opts into the adaptive :class:`BatchPolicy`, which grows the cap
    (up to ``AUTO_BATCH_MAX``) while batches dirty most of the network
    and decays it back otherwise.

    *checkpoint* (a :class:`repro.checkpoint.CheckpointManager`)
    enables round-boundary saves; *resume_data* is a previously saved
    ``"optimize"``-stage payload — the run grafts its state into
    *network*/*placement* and re-enters the loop at the saved cursor,
    yielding a result identical to the uninterrupted run.
    """
    pool = eval_pool
    own_pool = False
    if pool is None and workers > 1:
        pool = EvalPool(workers)
        own_pool = True
    try:
        return _optimize(
            network, placement, library, site_factory, mode=mode,
            max_rounds=max_rounds, batch_limit=batch_limit, epsilon=epsilon,
            collect_log=collect_log, incremental=incremental, pool=pool,
            checkpoint=checkpoint, resume_data=resume_data,
        )
    finally:
        if own_pool and pool is not None:
            pool.close()


def _optimize(
    network: Network,
    placement: Placement,
    library: Library,
    site_factory: SiteFactory,
    mode: str,
    max_rounds: int,
    batch_limit: "int | str",
    epsilon: float,
    collect_log: bool,
    incremental: bool,
    pool: EvalPool | None,
    checkpoint=None,
    resume_data: dict | None = None,
) -> OptimizeResult:
    from ..synth.mapper import network_area

    policy = resolve_batch_policy(batch_limit)
    start = time.perf_counter()
    start_round = 0
    if resume_data is not None:
        from ..checkpoint import (
            engine_from_state, graft_state, unpack_eval_state,
        )

        state = unpack_eval_state(resume_data["engine_state"])
        if incremental:
            # adopt the saved engine caches verbatim: incremental STA
            # resumed from them prices bit-identically to the engine
            # the interrupted run carried into this round
            engine = engine_from_state(state, network, placement, library)
        else:
            # the non-incremental loop rebuilds + re-analyzes every
            # round anyway, so a fresh analyze reproduces it exactly
            graft_state(state, network, placement)
            engine = TimingEngine(network, placement, library)
            engine.analyze()
        initial_delay = resume_data["initial_delay"]
        initial_area = resume_data["initial_area"]
        best_delay = resume_data["best_delay"]
        best_state = unpack_eval_state(resume_data["best"])
        best_snapshot = (
            best_state.network, best_state.placement,
            resume_data["best_version"],
        )
        policy.limit = resume_data["policy_limit"]
        stagnant = resume_data["stagnant"]
        start_round = resume_data["next_round"]
        result = OptimizeResult(
            mode=mode,
            initial_delay=initial_delay,
            final_delay=initial_delay,
            initial_area=initial_area,
            final_area=initial_area,
            rounds=resume_data["rounds"],
            moves_applied=resume_data["moves_applied"],
            move_log=list(resume_data["move_log"]),
        )
    else:
        engine = TimingEngine(network, placement, library)
        engine.analyze()
        initial_delay = engine.max_delay
        initial_area = network_area(network, library)
        best_delay = initial_delay
        best_snapshot = _snapshot(network, placement)
        result = OptimizeResult(
            mode=mode,
            initial_delay=initial_delay,
            final_delay=initial_delay,
            initial_area=initial_area,
            final_area=initial_area,
        )
        stagnant = 0
    for round_index in range(start_round, max_rounds):
        result.rounds = round_index + 1
        applied_min = _phase(
            network, placement, library, engine, site_factory,
            metric="min", policy=policy, epsilon=epsilon,
            result=result, collect_log=collect_log, pool=pool,
        )
        engine = _refreshed(engine, incremental)
        if engine.max_delay < best_delay - epsilon:
            best_delay = engine.max_delay
            best_snapshot = _snapshot(network, placement)
        applied_sum = _phase(
            network, placement, library, engine, site_factory,
            metric="sum", policy=policy, epsilon=epsilon,
            result=result, collect_log=collect_log, pool=pool,
        )
        engine = _refreshed(engine, incremental)
        if engine.max_delay < best_delay - epsilon:
            best_delay = engine.max_delay
            best_snapshot = _snapshot(network, placement)
            stagnant = 0
        else:
            stagnant += 1
        if not applied_min and not applied_sum:
            break
        if stagnant >= 2:
            break
        if checkpoint is not None:
            checkpoint.boundary("optimize", lambda: _optimize_cursor(
                engine, round_index, best_delay, best_snapshot,
                stagnant, policy, result, initial_delay, initial_area,
            ))
    _restore(network, placement, best_snapshot)
    engine = _refreshed(engine, incremental)
    engine = _area_recovery(
        network, placement, library, engine, site_factory,
        best_delay, epsilon, result, incremental=incremental,
    )
    from ..network.transform import sweep

    sweep(network)
    engine = _refreshed(engine, incremental)
    result.final_delay = engine.max_delay
    result.final_area = network_area(network, library)
    result.runtime_seconds = time.perf_counter() - start
    result.timing_stats = engine.stats.as_dict()
    return result


def _refreshed(engine: TimingEngine, incremental: bool) -> TimingEngine:
    """Up-to-date engine after a committed batch.

    Incremental mode updates the live engine in place; the baseline
    mode rebuilds one from scratch (the historical full-STA-per-round
    behaviour), carrying the work counters across so A/B benchmarks
    compare total timing-update work.
    """
    if incremental:
        engine.refresh()
        return engine
    fresh = TimingEngine(
        engine.network, engine.placement, engine.library,
        period=engine.period, po_pad_cap=engine.po_pad_cap,
    )
    fresh.stats = engine.stats
    fresh.analyze()
    return fresh


def _area_recovery(
    network: Network,
    placement: Placement,
    library: Library,
    engine: TimingEngine,
    site_factory: SiteFactory,
    best_delay: float,
    epsilon: float,
    result: OptimizeResult,
    incremental: bool = True,
    max_rounds: int = 6,
) -> TimingEngine:
    """Downsize/simplify wherever it is free (Coudert's area recovery).

    Takes the largest-area-saving move per site whose projected
    min-slack cost is ~zero, commits batches, and rolls a batch back if
    the *global* critical path regresses.  This pass is why GS and
    gsg+GS end up with the small area reductions Table 1 reports.
    """
    slack_floor = -1e-9
    for _ in range(max_rounds):
        engine = _refreshed(engine, incremental)
        sites = site_factory(network, engine)
        candidates: list[tuple[float, int, Move]] = []
        for order, site in enumerate(sites):
            best_move: Move | None = None
            best_area = -epsilon
            for move in site.moves:
                area = move.area_delta(library)
                if area >= best_area:
                    continue
                gains = move.gains(engine)
                # spend positive slack freely, but never project a
                # neighborhood below the floor (negative slack = the
                # global critical path would stretch)
                if gains.projected_min < slack_floor:
                    continue
                best_move = move
                best_area = area
            if best_move is not None:
                candidates.append((best_area, order, best_move))
        if not candidates:
            return engine
        candidates.sort(key=lambda item: (item[0], item[1]))
        snapshot = _snapshot(network, placement)
        touched: set[str] = set()
        applied = 0
        for _area, _order, move in candidates:
            footprint = move.footprint(network)
            if footprint & touched:
                continue
            move.apply(network, library)
            touched |= footprint
            applied += 1
        if not applied:
            return engine
        engine = _refreshed(engine, incremental)
        if engine.max_delay > best_delay + 1e-6:
            _restore(network, placement, snapshot)
            return _refreshed(engine, incremental)
        result.moves_applied += applied
    return engine


def _phase(
    network: Network,
    placement: Placement,
    library: Library,
    engine: TimingEngine,
    site_factory: SiteFactory,
    metric: str,
    policy: BatchPolicy,
    epsilon: float,
    result: OptimizeResult,
    collect_log: bool,
    pool: EvalPool | None = None,
) -> int:
    """One greedy batch of the given metric; returns moves applied.

    Per-site candidate selection lives in
    :func:`repro.parallel.best_phase_move` (one copy of the policy for
    the serial and the sharded path); with a *pool* the selections are
    computed on worker-side snapshot replicas and merged back in site
    order, so the candidate list is identical either way.
    """
    engine.refresh()
    sites = site_factory(network, engine)
    if pool is not None:
        selections = pool.evaluate(engine, library, sites, metric, epsilon)
    else:
        selections = [
            best_phase_move(site, engine, library, metric, epsilon)
            for site in sites
        ]
    candidates: list[tuple[float, float, int, Move]] = []
    for order, (site, selection) in enumerate(zip(sites, selections)):
        if selection is None:
            continue
        best_score, best_area, move_index = selection
        candidates.append(
            (best_score, best_area, order, site.moves[move_index])
        )
    candidates.sort(key=lambda item: (-item[0], item[1], item[2]))
    touched: set[str] = set()
    applied = 0
    batch_limit = policy.limit
    for score, _area, _order, move in candidates:
        if applied >= batch_limit:
            break
        footprint = move.footprint(network)
        if footprint & touched:
            continue
        move.apply(network, library)
        touched |= footprint
        applied += 1
        result.moves_applied += 1
        if collect_log:
            result.move_log.append(
                f"{metric}:{move.describe()} (score {score:+.4f})"
            )
    if applied:
        policy.observe(len(touched), len(network.inputs) + len(network))
    return applied


def _optimize_cursor(
    engine: TimingEngine,
    round_index: int,
    best_delay: float,
    best_snapshot: tuple[Network, Placement, int],
    stagnant: int,
    policy: BatchPolicy,
    result: OptimizeResult,
    initial_delay: float,
    initial_area: float,
) -> dict:
    """Round-boundary resume payload for the two-phase loop.

    Captures everything :func:`_optimize` needs to re-enter the loop at
    ``next_round`` and finish bit-identically: the engine's cached
    analysis (the resume vehicle — re-analyzing would not be bit-exact
    to incremental STA), the best-seen snapshot with its capture
    version, the RNG-free loop cursor and the result counters.
    """
    from ..checkpoint import pack_eval_state, pack_network

    best_network, best_placement, best_version = best_snapshot
    return {
        "next_round": round_index + 1,
        "best_delay": best_delay,
        "best": pack_network(best_network, best_placement),
        "best_version": best_version,
        "stagnant": stagnant,
        "policy_limit": policy.limit,
        "rounds": result.rounds,
        "moves_applied": result.moves_applied,
        "move_log": list(result.move_log),
        "initial_delay": initial_delay,
        "initial_area": initial_area,
        "engine_state": pack_eval_state(engine.export_eval_state()),
    }


def _snapshot(
    network: Network, placement: Placement
) -> tuple[Network, Placement, int]:
    """Deep copies plus the live network's version at capture time.

    The version lets :func:`_restore` recognise that nothing mutated
    since the capture and skip the rollback — important for the
    incremental timing engine, which treats a wholesale restore as an
    untracked mutation and would re-run full STA for nothing.
    """
    return (network.copy(), placement.copy(), network.version)


def _restore(
    network: Network,
    placement: Placement,
    snapshot: tuple[Network, Placement, int],
) -> None:
    """Copy the snapshot's contents back into the live objects.

    Emits a ``"restore"`` mutation event carrying the exact gate-level
    diff, so incremental listeners (the timing engine, the supergate
    cache) invalidate only what the rollback actually changed instead
    of re-analyzing the whole design.
    """
    best_network, best_placement, version = snapshot
    if network.version == version:
        return  # live state is the snapshot: nothing to roll back
    live_gates = network._gates
    best_gates = best_network._gates
    removed = tuple(
        (name, tuple(gate.fanins))
        for name, gate in live_gates.items() if name not in best_gates
    )
    added = tuple(
        (name, tuple(gate.fanins))
        for name, gate in best_gates.items() if name not in live_gates
    )
    changed = []
    for name, gate in best_gates.items():
        other = live_gates.get(name)
        if other is None:
            continue
        if (
            gate.gtype is not other.gtype
            or gate.fanins != other.fanins
            or gate.cell != other.cell
        ):
            changed.append((name, tuple(other.fanins), tuple(gate.fanins)))
    # the optimizer never rebinds IO or moves placed cells, but a
    # listener must not trust that silently — flag anything beyond a
    # pure gate-level rollback so it falls back to full re-analysis
    io_changed = (
        network.inputs != best_network.inputs
        or network.outputs != best_network.outputs
        or any(
            best_placement.locations.get(name) != location
            for name, location in placement.locations.items()
            if name in best_placement.locations
        )
    )
    network.inputs = list(best_network.inputs)
    network._input_set = set(best_network._input_set)
    network.outputs = list(best_network.outputs)
    network._gates = {
        name: gate for name, gate in best_network.copy()._gates.items()
    }
    placement.locations = dict(best_placement.locations)
    placement.input_pads = dict(best_placement.input_pads)
    placement.output_pads = dict(best_placement.output_pads)
    network._touch((
        events.RESTORE,
        {
            "added": added,
            "removed": removed,
            "changed": tuple(changed),
            "io_changed": io_changed,
        },
    ))
