"""Gate-resize moves for the two-phase optimizer (the GS of Table 1).

Pricing contract: :meth:`ResizeMove.gains` is *projection-only* — it
rides :meth:`~repro.timing.sta.TimingEngine.resize_gain`, which builds
what-if star models off the cached analysis and never touches the
network.  Candidate evaluation therefore fires zero mutation events
(no trial apply-and-revert), the invariant the sharded evaluator and
the incremental caches rely on; ``apply`` is the only mutating entry.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..contracts import projection_only
from ..library.cells import Library
from ..network.netlist import Network
from ..sizing.coudert import Site
from ..timing.sta import Gains, TimingEngine


@dataclass(frozen=True)
class ResizeMove:
    """Rebind a gate to a different drive strength of the same function."""

    gate: str
    old_cell: str
    new_cell: str

    @projection_only
    def gains(self, engine: TimingEngine) -> Gains:
        return engine.resize_gain(self.gate, self.new_cell)

    def footprint(self, network: Network) -> set[str]:
        """Exactly the nets whose timing a resize can move: the gate's
        own output net (its delay arcs change) and every fanin net
        (their loads see the new pin capacitance)."""
        gate = network.gate(self.gate)
        return {self.gate, *gate.fanins}

    def apply(self, network: Network, library: Library) -> None:
        network.set_cell(self.gate, self.new_cell)

    def area_delta(self, library: Library) -> float:
        return (
            library.cell(self.new_cell).area - library.cell(self.old_cell).area
        )

    def describe(self) -> str:
        return f"resize {self.gate}: {self.old_cell} -> {self.new_cell}"


def resize_sites(
    network: Network,
    library: Library,
    gate_filter=None,
) -> list[Site]:
    """One site per resizable gate, optionally filtered.

    *gate_filter* (name -> bool) restricts sizing to a subset — the
    gsg+GS mode passes the "covered only by a trivial supergate"
    predicate here.
    """
    sites: list[Site] = []
    for gate in network.gates():
        if gate.cell is None:
            continue
        if gate_filter is not None and not gate_filter(gate.name):
            continue
        cell = library.cell(gate.cell)
        alternatives = [
            alt for alt in library.sizes_of(cell) if alt.name != cell.name
        ]
        if not alternatives:
            continue
        moves = [
            ResizeMove(gate=gate.name, old_cell=cell.name, new_cell=alt.name)
            for alt in alternatives
        ]
        sites.append(Site(key=f"gate:{gate.name}", moves=moves))
    return sites
